package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"s3/internal/obs/obstest"
)

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("s3_test_total", "A test counter.", L("kind", "x"))
	c.Add(3)
	r.Counter("s3_test_total", "A test counter.", L("kind", "y")).Inc()
	r.GaugeFunc("s3_test_gauge", "A test gauge.", func() float64 { return 7.5 })
	h := r.Histogram("s3_test_seconds", "A test histogram.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(100)

	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	samples := obstest.ParseExposition(t, text)

	if got := samples[`s3_test_total{kind="x"}`]; got != 3 {
		t.Fatalf("counter x = %v, want 3", got)
	}
	if got := samples[`s3_test_total{kind="y"}`]; got != 1 {
		t.Fatalf("counter y = %v, want 1", got)
	}
	if got := samples["s3_test_gauge"]; got != 7.5 {
		t.Fatalf("gauge = %v, want 7.5", got)
	}
	// Cumulative buckets: 0.05 ≤ 0.1; 0.5 ≤ 1; 100 only in +Inf.
	wantBuckets := map[string]float64{
		`s3_test_seconds_bucket{le="0.1"}`:  1,
		`s3_test_seconds_bucket{le="1"}`:    2,
		`s3_test_seconds_bucket{le="10"}`:   2,
		`s3_test_seconds_bucket{le="+Inf"}`: 3,
		`s3_test_seconds_count`:             3,
	}
	for k, want := range wantBuckets {
		if got := samples[k]; got != want {
			t.Fatalf("%s = %v, want %v", k, got, want)
		}
	}
	if got := samples["s3_test_seconds_sum"]; got < 100.5 || got > 100.6 {
		t.Fatalf("sum = %v, want ~100.55", got)
	}
	obstest.CheckHistogram(t, samples, "s3_test_seconds", "")

	// Bucket lines must be cumulative (monotone non-decreasing in bound
	// order) — walk them in rendered order.
	var prev float64 = -1
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "s3_test_seconds_bucket") {
			continue
		}
		v, _ := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
		if v < prev {
			t.Fatalf("bucket counts not monotone: %q after %v", line, prev)
		}
		prev = v
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("s3_dup_total", "dup")
	b := r.Counter("s3_dup_total", "dup")
	if a != b {
		t.Fatal("re-registering a counter must return the same instrument")
	}
	h1 := r.Histogram("s3_dup_seconds", "dup", nil)
	h2 := r.Histogram("s3_dup_seconds", "dup", nil)
	if h1 != h2 {
		t.Fatal("re-registering a histogram must return the same instrument")
	}
	// Func metrics rebind on re-registration (reload paths swap closures).
	r.GaugeFunc("s3_dup_gauge", "dup", func() float64 { return 1 })
	r.GaugeFunc("s3_dup_gauge", "dup", func() float64 { return 2 })
	var buf bytes.Buffer
	_, _ = r.WriteTo(&buf)
	if got := obstest.ParseExposition(t, buf.String())["s3_dup_gauge"]; got != 2 {
		t.Fatalf("rebound gauge = %v, want 2", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("s3_conc_seconds", "concurrent", nil)
	var wg sync.WaitGroup
	const workers, per = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%100) / 1000)
				if i%64 == 0 {
					var buf bytes.Buffer
					_, _ = r.WriteTo(&buf)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	var buf bytes.Buffer
	_, _ = r.WriteTo(&buf)
	samples := obstest.ParseExposition(t, buf.String())
	obstest.CheckHistogram(t, samples, "s3_conc_seconds", "")
	if got := samples[`s3_conc_seconds_bucket{le="+Inf"}`]; got != workers*per {
		t.Fatalf("+Inf bucket = %v, want %d", got, workers*per)
	}
}

func TestSpanTreeJSON(t *testing.T) {
	tr := NewTrace("search")
	if tr.TraceID() == 0 {
		t.Fatal("trace id must be non-zero")
	}
	sp := tr.Span().StartChild("round")
	sp.SetInt("n", 1)
	child := sp.StartChild("shard0")
	child.SetAttr("url", "http://w0")
	child.End()
	sp.End()
	tr.Finish()

	js := tr.JSON()
	if js.Name != "search" || len(js.Children) != 1 {
		t.Fatalf("unexpected tree root: %+v", js)
	}
	round := js.Children[0]
	if round.Name != "round" || round.Attrs["n"] != "1" || len(round.Children) != 1 {
		t.Fatalf("unexpected round span: %+v", round)
	}
	if round.Children[0].Attrs["url"] != "http://w0" {
		t.Fatalf("lost child attr: %+v", round.Children[0])
	}
	if _, err := json.Marshal(js); err != nil {
		t.Fatal(err)
	}

	stages := StagesMS(tr.Root)
	if _, ok := stages["round"]; !ok {
		t.Fatalf("stages missing round: %v", stages)
	}
}

func TestNilSpanSafety(t *testing.T) {
	var sp *Span
	c := sp.StartChild("x")
	if c != nil {
		t.Fatal("child of nil span must be nil")
	}
	c.SetAttr("k", "v")
	c.SetInt("k", 1)
	c.End()
	sp.Attach(c)
	var tr *Trace
	if tr.TraceID() != 0 || tr.Span() != nil || tr.JSON() != nil {
		t.Fatal("nil trace must read as absent")
	}
	tr.Finish()
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(2)
	for i := 0; i < 3; i++ {
		r.Add(&TraceRecord{TraceID: IDString(uint64(i + 1))})
	}
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("ring retained %d, want 2", len(snap))
	}
	if snap[0].TraceID != IDString(3) || snap[1].TraceID != IDString(2) {
		t.Fatalf("wrong order/content: %v %v", snap[0].TraceID, snap[1].TraceID)
	}

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var body struct {
		Traces []TraceRecord `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Traces) != 2 {
		t.Fatalf("handler returned %d traces, want 2", len(body.Traces))
	}
}

func TestSlowLog(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLog(&buf, 10*time.Millisecond)
	if l.Emit(5*time.Millisecond, &SlowRecord{Seeker: "u"}) {
		t.Fatal("below-threshold search must not log")
	}
	if !l.Emit(15*time.Millisecond, &SlowRecord{
		Seeker: "u", Keywords: []string{"k"}, K: 5, Outcome: "cold",
		Rounds: 7, Shards: 2, RequestID: "rid", TraceID: "tid",
		StagesMS: map[string]float64{"round": 12.5},
	}) {
		t.Fatal("above-threshold search must log")
	}
	line := strings.TrimSpace(buf.String())
	if strings.Count(line, "\n") != 0 {
		t.Fatalf("slow log must be one line, got %q", line)
	}
	var rec SlowRecord
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("slow log line is not JSON: %v (%q)", err, line)
	}
	if rec.ElapsedMS != 15 || rec.Rounds != 7 || rec.RequestID != "rid" || rec.StagesMS["round"] != 12.5 {
		t.Fatalf("lost fields: %+v", rec)
	}
	if l.Emitted() != 1 {
		t.Fatalf("emitted = %d, want 1", l.Emitted())
	}

	var nilLog *SlowLog
	if nilLog.Enabled() || nilLog.Emit(time.Hour, &SlowRecord{}) || nilLog.Threshold() != 0 {
		t.Fatal("nil slow log must be disabled")
	}
}
