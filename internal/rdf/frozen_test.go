package rdf

import (
	"fmt"
	"math/rand"
	"testing"

	"s3/internal/dict"
)

// buildSaturated assembles a weighted, saturated graph with schema
// chains, instances and sub-properties.
func buildSaturated(seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewWithDict()
	for c := 0; c < 6; c++ {
		g.Add(fmt.Sprintf("c%d", c), SubClassOfURI, fmt.Sprintf("c%d", (c+1)%8))
	}
	for p := 0; p < 4; p++ {
		g.Add(fmt.Sprintf("p%d", p), SubPropertyOfURI, fmt.Sprintf("p%d", p+1))
	}
	g.Add("p0", DomainURI, "c0")
	g.Add("p1", RangeURI, "c2")
	for i := 0; i < 40; i++ {
		s := fmt.Sprintf("e%d", rng.Intn(12))
		o := fmt.Sprintf("e%d", rng.Intn(12))
		p := fmt.Sprintf("p%d", rng.Intn(4))
		if rng.Intn(3) == 0 {
			g.AddWeighted(s, p, o, 0.25+0.5*rng.Float64())
		} else {
			g.Add(s, p, o)
		}
		if rng.Intn(4) == 0 {
			g.Add(s, TypeURI, fmt.Sprintf("c%d", rng.Intn(6)))
		}
	}
	g.Saturate()
	return g
}

// TestFrozenMatchesIndexed checks every read answered by a frozen graph
// against the map-indexed original: Objects, Subjects, PropertyPairs,
// Has, Weight and Ext must agree on all touched ids.
func TestFrozenMatchesIndexed(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := buildSaturated(seed)
		spo, pos := TriplePerms(g.Triples())
		fz, err := FromTriplesFrozen(g.Dict(), g.Triples(), spo, pos)
		if err != nil {
			t.Fatal(err)
		}
		if fz.Len() != g.Len() || !fz.Saturated() {
			t.Fatalf("frozen graph has %d triples (want %d), saturated=%v", fz.Len(), g.Len(), fz.Saturated())
		}
		n := dict.ID(g.Dict().Len())
		sorted := func(ids []ID) map[ID]bool {
			m := make(map[ID]bool, len(ids))
			for _, id := range ids {
				m[id] = true
			}
			return m
		}
		for s := ID(0); s < n; s++ {
			for p := ID(0); p < n; p++ {
				wo, go_ := sorted(g.Objects(s, p)), sorted(fz.Objects(s, p))
				if len(wo) != len(go_) {
					t.Fatalf("seed %d: Objects(%d,%d) diverge: %v vs %v", seed, s, p, wo, go_)
				}
				for id := range wo {
					if !go_[id] {
						t.Fatalf("seed %d: Objects(%d,%d) missing %d", seed, s, p, id)
					}
				}
				ws, gs := sorted(g.Subjects(s, p)), sorted(fz.Subjects(s, p))
				if len(ws) != len(gs) {
					t.Fatalf("seed %d: Subjects(%d,%d) diverge", seed, s, p)
				}
			}
			if len(g.PropertyPairs(s)) != len(fz.PropertyPairs(s)) {
				t.Fatalf("seed %d: PropertyPairs(%d) diverge", seed, s)
			}
		}
		for _, tr := range g.Triples() {
			if !fz.Has(tr.S, tr.P, tr.O) {
				t.Fatalf("seed %d: frozen graph lost (%d,%d,%d)", seed, tr.S, tr.P, tr.O)
			}
			w1, _ := g.Weight(tr.S, tr.P, tr.O)
			w2, ok := fz.Weight(tr.S, tr.P, tr.O)
			if !ok || w1 != w2 {
				t.Fatalf("seed %d: weight of (%d,%d,%d) = %v vs %v", seed, tr.S, tr.P, tr.O, w1, w2)
			}
			e1, e2 := g.Ext(tr.O), fz.Ext(tr.O)
			if len(e1) != len(e2) {
				t.Fatalf("seed %d: Ext(%d) diverges: %v vs %v", seed, tr.O, e1, e2)
			}
			for i := range e1 {
				if e1[i] != e2[i] {
					t.Fatalf("seed %d: Ext(%d)[%d] = %d vs %d", seed, tr.O, i, e1[i], e2[i])
				}
			}
		}
	}
}

// TestFrozenQueriesMatchIndexed runs the BGP query evaluator over both
// representations.
func TestFrozenQueriesMatchIndexed(t *testing.T) {
	g := buildSaturated(5)
	spo, pos := TriplePerms(g.Triples())
	fz, err := FromTriplesFrozen(g.Dict(), g.Triples(), spo, pos)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range [][]string{
		{"?s p0 ?o"},
		{"?s rdf:type c1"},
		{"?s ?p e3", "?s rdf:type ?c"},
	} {
		want, err1 := g.QueryStrings(q...)
		got, err2 := fz.QueryStrings(q...)
		if err1 != nil || err2 != nil {
			t.Fatalf("query %v: %v / %v", q, err1, err2)
		}
		if fmt.Sprint(want) != fmt.Sprint(got) {
			t.Fatalf("query %v diverges:\n%v\nvs\n%v", q, want, got)
		}
	}
}

// TestFrozenIsReadOnly pins the mutation guard.
func TestFrozenIsReadOnly(t *testing.T) {
	g := buildSaturated(2)
	spo, pos := TriplePerms(g.Triples())
	fz, err := FromTriplesFrozen(g.Dict(), g.Triples(), spo, pos)
	if err != nil {
		t.Fatal(err)
	}
	for name, f := range map[string]func(){
		"AddT":     func() { fz.AddT(0, 1, 2, 1) },
		"Saturate": func() { fz.Saturate() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on a frozen graph did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestFrozenRejectsBadStructure covers the structural validation.
func TestFrozenRejectsBadStructure(t *testing.T) {
	g := buildSaturated(3)
	spo, pos := TriplePerms(g.Triples())
	if _, err := FromTriplesFrozen(g.Dict(), g.Triples(), spo[:1], pos); err == nil {
		t.Error("short spo permutation accepted")
	}
	bad := append([]int32(nil), spo...)
	bad[0] = int32(len(g.Triples()))
	if _, err := FromTriplesFrozen(g.Dict(), g.Triples(), bad, pos); err == nil {
		t.Error("out-of-range spo entry accepted")
	}
	d := dict.New()
	if _, err := FromTriplesFrozen(d, g.Triples(), spo, pos); err == nil {
		t.Error("triples outside the dictionary accepted")
	}
}
