package rdf

import (
	"math/rand"
	"testing"
)

func TestAddAndLookup(t *testing.T) {
	g := NewWithDict()
	if !g.Add("u1", "hasFriend", "u0") {
		t.Fatal("first Add returned false")
	}
	if g.Add("u1", "hasFriend", "u0") {
		t.Fatal("duplicate Add returned true")
	}
	if !g.HasStr("u1", "hasFriend", "u0") {
		t.Fatal("statement missing after Add")
	}
	if g.HasStr("u0", "hasFriend", "u1") {
		t.Fatal("reverse statement should not exist")
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
}

func TestWeightedAddKeepsMax(t *testing.T) {
	g := NewWithDict()
	g.AddWeighted("a", "sim", "b", 0.3)
	g.AddWeighted("a", "sim", "b", 0.7)
	g.AddWeighted("a", "sim", "b", 0.5)
	s, _ := g.Dict().Lookup("a")
	p, _ := g.Dict().Lookup("sim")
	o, _ := g.Dict().Lookup("b")
	w, ok := g.Weight(s, p, o)
	if !ok || w != 0.7 {
		t.Fatalf("Weight = %v,%v, want 0.7,true", w, ok)
	}
	// The triples slice must reflect the weight upgrade too.
	for _, tr := range g.Triples() {
		if tr.S == s && tr.P == p && tr.O == o && tr.W != 0.7 {
			t.Fatalf("triple slice weight = %v, want 0.7", tr.W)
		}
	}
}

func TestAddPanicsOnBadWeight(t *testing.T) {
	g := NewWithDict()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on weight > 1")
		}
	}()
	g.AddWeighted("a", "p", "b", 1.5)
}

// The paper's §2.1 example: from (u1 hasFriend u0) and
// (hasFriend range Person) entailment derives (u0 type Person).
func TestSaturationRangeRule(t *testing.T) {
	g := NewWithDict()
	g.Add("u1", "hasFriend", "u0")
	g.Add("hasFriend", RangeURI, "Person")
	g.Saturate()
	if !g.HasStr("u0", TypeURI, "Person") {
		t.Fatal("range rule did not derive u0 type Person")
	}
	if g.HasStr("u1", TypeURI, "Person") {
		t.Fatal("range rule wrongly typed the subject")
	}
}

func TestSaturationDomainRule(t *testing.T) {
	g := NewWithDict()
	g.Add("hasDegreeFrom", DomainURI, "Graduate")
	g.Add("hasDegreeFrom", RangeURI, "University")
	g.Add("u2", "hasDegreeFrom", "UAlberta")
	g.Saturate()
	if !g.HasStr("u2", TypeURI, "Graduate") {
		t.Fatal("domain rule did not derive u2 type Graduate")
	}
	if !g.HasStr("UAlberta", TypeURI, "University") {
		t.Fatal("range rule did not derive UAlberta type University")
	}
}

func TestSaturationSubClassTransitivityAndTyping(t *testing.T) {
	g := NewWithDict()
	g.Add("M.S.Degree", SubClassOfURI, "Degree")
	g.Add("Degree", SubClassOfURI, "Qualification")
	g.Add("myMS", TypeURI, "M.S.Degree")
	g.Saturate()
	if !g.HasStr("M.S.Degree", SubClassOfURI, "Qualification") {
		t.Fatal("subclass transitivity missing")
	}
	if !g.HasStr("myMS", TypeURI, "Degree") || !g.HasStr("myMS", TypeURI, "Qualification") {
		t.Fatal("type propagation through subclass chain missing")
	}
}

func TestSaturationSubPropertyRule(t *testing.T) {
	g := NewWithDict()
	g.Add("workingWith", SubPropertyOfURI, "acquaintedWith")
	g.Add("u1", "workingWith", "u2")
	g.Saturate()
	if !g.HasStr("u1", "acquaintedWith", "u2") {
		t.Fatal("subproperty rule did not derive the superproperty statement")
	}
}

// Saturation applies rules in any order; a schema triple arriving "after"
// the data it constrains must still fire.
func TestSaturationOrderIndependence(t *testing.T) {
	g := NewWithDict()
	g.Add("u1", "workingWith", "u2") // data first
	g.Add("workingWith", SubPropertyOfURI, "acquaintedWith")
	g.Add("acquaintedWith", RangeURI, "Person")
	g.Saturate()
	if !g.HasStr("u1", "acquaintedWith", "u2") {
		t.Fatal("late schema: subproperty statement missing")
	}
	if !g.HasStr("u2", TypeURI, "Person") {
		t.Fatal("late schema: range typing through derived statement missing")
	}
}

// Weighted triples (w < 1) must not participate in entailment (paper §2.1).
func TestSaturationIgnoresWeightedTriples(t *testing.T) {
	g := NewWithDict()
	g.AddWeighted("u1", "social", "u2", 0.5)
	g.Add("social", RangeURI, "Person")
	g.Saturate()
	if g.HasStr("u2", TypeURI, "Person") {
		t.Fatal("weighted triple wrongly participated in entailment")
	}
}

// Upgrading a weighted triple to weight 1 makes it visible to reasoning.
func TestWeightUpgradeTriggersEntailment(t *testing.T) {
	g := NewWithDict()
	g.AddWeighted("u1", "social", "u2", 0.5)
	g.Add("social", RangeURI, "Person")
	g.Saturate()
	g.AddWeighted("u1", "social", "u2", 1)
	if !g.HasStr("u2", TypeURI, "Person") {
		t.Fatal("weight upgrade did not trigger entailment")
	}
}

func TestSaturateIsIdempotent(t *testing.T) {
	g := NewWithDict()
	g.Add("a", SubClassOfURI, "b")
	g.Add("b", SubClassOfURI, "c")
	g.Add("x", TypeURI, "a")
	first := g.Saturate()
	if first == 0 {
		t.Fatal("expected inferences on first Saturate")
	}
	if again := g.Saturate(); again != 0 {
		t.Fatalf("second Saturate inferred %d triples, want 0", again)
	}
}

// Incremental insertion after saturation must yield the same closure as
// batch saturation of all triples.
func TestIncrementalMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		triples := randomSchemaTriples(rng, 40)

		batch := NewWithDict()
		for _, tr := range triples {
			batch.Add(tr[0], tr[1], tr[2])
		}
		batch.Saturate()

		incr := NewWithDict()
		half := len(triples) / 2
		for _, tr := range triples[:half] {
			incr.Add(tr[0], tr[1], tr[2])
		}
		incr.Saturate()
		for _, tr := range triples[half:] {
			incr.Add(tr[0], tr[1], tr[2]) // incremental path
		}

		if batch.Len() != incr.Len() {
			t.Fatalf("trial %d: batch closure has %d triples, incremental %d",
				trial, batch.Len(), incr.Len())
		}
		for _, tr := range batch.Triples() {
			s := batch.Dict().String(tr.S)
			p := batch.Dict().String(tr.P)
			o := batch.Dict().String(tr.O)
			if !incr.HasStr(s, p, o) {
				t.Fatalf("trial %d: incremental closure missing (%s %s %s)", trial, s, p, o)
			}
		}
	}
}

// randomSchemaTriples generates a random mix of schema and data triples
// over small vocabularies, exercising every entailment rule.
func randomSchemaTriples(rng *rand.Rand, n int) [][3]string {
	classes := []string{"c0", "c1", "c2", "c3", "c4"}
	props := []string{"p0", "p1", "p2", "p3"}
	inds := []string{"i0", "i1", "i2", "i3", "i4", "i5"}
	out := make([][3]string, 0, n)
	for len(out) < n {
		switch rng.Intn(5) {
		case 0:
			out = append(out, [3]string{classes[rng.Intn(len(classes))], SubClassOfURI, classes[rng.Intn(len(classes))]})
		case 1:
			out = append(out, [3]string{props[rng.Intn(len(props))], SubPropertyOfURI, props[rng.Intn(len(props))]})
		case 2:
			out = append(out, [3]string{props[rng.Intn(len(props))], DomainURI, classes[rng.Intn(len(classes))]})
		case 3:
			out = append(out, [3]string{props[rng.Intn(len(props))], RangeURI, classes[rng.Intn(len(classes))]})
		default:
			out = append(out, [3]string{inds[rng.Intn(len(inds))], props[rng.Intn(len(props))], inds[rng.Intn(len(inds))]})
		}
	}
	return out
}

// Saturation of subclass chains equals graph reachability.
func TestSubclassClosureEqualsReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		const n = 8
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
		}
		g := NewWithDict()
		names := make([]string, n)
		for i := range names {
			names[i] = string(rune('A' + i))
		}
		for e := 0; e < 12; e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			adj[i][j] = true
			g.Add(names[i], SubClassOfURI, names[j])
		}
		g.Saturate()
		reach := transitiveClosure(adj)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				want := reach[i][j]
				got := g.HasStr(names[i], SubClassOfURI, names[j])
				if want != got {
					t.Fatalf("trial %d: closure(%s,%s) = %v, want %v", trial, names[i], names[j], got, want)
				}
			}
		}
	}
}

func transitiveClosure(adj [][]bool) [][]bool {
	n := len(adj)
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = append([]bool(nil), adj[i]...)
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !reach[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if reach[k][j] {
					reach[i][j] = true
				}
			}
		}
	}
	return reach
}

func TestExtDefinition(t *testing.T) {
	g := NewWithDict()
	g.Add("M.S.", SubClassOfURI, "degree")
	g.Add("B.S.", SubClassOfURI, "degree")
	g.Add("myDiploma", TypeURI, "degree")
	g.Add("awardedDegree", SubPropertyOfURI, "degree") // contrived but legal
	g.Add("unrelated", SubClassOfURI, "other")
	g.Saturate()

	k := g.Dict().Intern("degree")
	ext := g.Ext(k)
	if ext[0] != k {
		t.Fatal("Ext must list the keyword itself first")
	}
	want := map[string]bool{"degree": true, "M.S.": true, "B.S.": true, "myDiploma": true, "awardedDegree": true}
	if len(ext) != len(want) {
		t.Fatalf("Ext size = %d, want %d (%v)", len(ext), len(want), extStrings(g, ext))
	}
	for _, id := range ext {
		if !want[g.Dict().String(id)] {
			t.Fatalf("unexpected member %q in Ext", g.Dict().String(id))
		}
	}
}

// Ext must see through subclass chains thanks to saturation:
// M.S. ≺sc Masters ≺sc degree ⇒ M.S. ∈ Ext(degree).
func TestExtThroughChains(t *testing.T) {
	g := NewWithDict()
	g.Add("M.S.", SubClassOfURI, "Masters")
	g.Add("Masters", SubClassOfURI, "degree")
	g.Saturate()
	ext := extStrings(g, g.ExtStr("degree"))
	found := false
	for _, s := range ext {
		if s == "M.S." {
			found = true
		}
	}
	if !found {
		t.Fatalf("Ext(degree) = %v, want it to contain M.S.", ext)
	}
}

func TestExtOfUnknownKeywordIsSelf(t *testing.T) {
	g := NewWithDict()
	g.Saturate()
	ext := g.ExtStr("neverseen")
	if len(ext) != 1 || g.Dict().String(ext[0]) != "neverseen" {
		t.Fatalf("Ext of unknown keyword = %v, want just itself", extStrings(g, ext))
	}
}

func extStrings(g *Graph, ids []ID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = g.Dict().String(id)
	}
	return out
}

func BenchmarkSaturateChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := NewWithDict()
		for j := 0; j < 200; j++ {
			g.Add(className(j), SubClassOfURI, className(j+1))
		}
		b.StartTimer()
		g.Saturate()
	}
}

func className(i int) string { return "class" + string(rune('0'+i%10)) + "-" + string(rune('a'+i%26)) }
