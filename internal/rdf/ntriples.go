package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// N-Triples-style serialisation. The format is a pragmatic subset of the
// W3C N-Triples syntax extended with an optional weight annotation:
//
//	<s> <p> <o> .
//	<s> <p> "literal" .
//	<s> <p> <o> 0.5 .        # weighted statement
//	# comment
//
// It lets instances exchange ontologies with external tools (R6
// interoperability) without pulling in a full RDF toolkit.

// WriteNTriples serialises the graph.
func (g *Graph) WriteNTriples(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, t := range g.triples {
		s := formatTerm(g.dict.String(t.S), false)
		p := formatTerm(g.dict.String(t.P), false)
		o := formatTerm(g.dict.String(t.O), true)
		var err error
		if t.W == 1 {
			_, err = fmt.Fprintf(bw, "%s %s %s .\n", s, p, o)
		} else {
			_, err = fmt.Fprintf(bw, "%s %s %s %g .\n", s, p, o, t.W)
		}
		if err != nil {
			return fmt.Errorf("rdf: writing triples: %w", err)
		}
	}
	return bw.Flush()
}

// formatTerm writes URIs in angle brackets; objects that look like plain
// literals (contain spaces or quotes) are quoted.
func formatTerm(v string, allowLiteral bool) string {
	if allowLiteral && strings.ContainsAny(v, " \t\"") {
		return strconv.Quote(v)
	}
	return "<" + v + ">"
}

// ReadNTriples parses statements produced by WriteNTriples (plus comments
// and blank lines) into the graph, returning the number of new statements.
func (g *Graph) ReadNTriples(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	added, lineNo := 0, 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, p, o, w, err := parseNTLine(line)
		if err != nil {
			return added, fmt.Errorf("rdf: line %d: %w", lineNo, err)
		}
		if g.AddWeighted(s, p, o, w) {
			added++
		}
	}
	if err := sc.Err(); err != nil {
		return added, fmt.Errorf("rdf: reading triples: %w", err)
	}
	return added, nil
}

func parseNTLine(line string) (s, p, o string, w float64, err error) {
	rest := line
	w = 1
	next := func() (string, error) {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			return "", fmt.Errorf("unexpected end of statement")
		}
		switch rest[0] {
		case '<':
			end := strings.IndexByte(rest, '>')
			if end < 0 {
				return "", fmt.Errorf("unterminated URI")
			}
			term := rest[1:end]
			rest = rest[end+1:]
			return term, nil
		case '"':
			unq, tail, ok := cutQuoted(rest)
			if !ok {
				return "", fmt.Errorf("unterminated literal")
			}
			rest = tail
			return unq, nil
		default:
			sp := strings.IndexAny(rest, " \t")
			if sp < 0 {
				term := rest
				rest = ""
				return term, nil
			}
			term := rest[:sp]
			rest = rest[sp:]
			return term, nil
		}
	}
	if s, err = next(); err != nil {
		return
	}
	if p, err = next(); err != nil {
		return
	}
	if o, err = next(); err != nil {
		return
	}
	rest = strings.TrimSpace(rest)
	rest = strings.TrimSuffix(rest, ".")
	rest = strings.TrimSpace(rest)
	if rest != "" {
		if w, err = strconv.ParseFloat(rest, 64); err != nil {
			err = fmt.Errorf("bad weight %q", rest)
			return
		}
		if w < 0 || w > 1 {
			err = fmt.Errorf("weight %v outside [0,1]", w)
			return
		}
	}
	return
}

// cutQuoted parses a Go-style quoted string at the head of s.
func cutQuoted(s string) (value, rest string, ok bool) {
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			continue
		}
		if s[i] == '"' {
			unq, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", false
			}
			return unq, s[i+1:], true
		}
	}
	return "", "", false
}
