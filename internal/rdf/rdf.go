// Package rdf implements the semantic substrate of the S3 model (paper
// §2.1): a weighted RDF graph with RDFS schema constraints, saturation
// (RDF entailment restricted to certain triples), and the keyword-extension
// operator Ext(k) of Definition 2.1.
//
// A triple (s, p, o, w) carries a weight w ∈ [0, 1]; triples with w = 1 are
// facts that certainly hold and participate in entailment, while triples
// with w < 1 carry quantitative information (e.g. social-link strength) and
// are excluded from reasoning, exactly as the paper prescribes.
package rdf

import (
	"fmt"
	"sort"

	"s3/internal/dict"
)

// ID aliases dict.ID: every subject, property and object is an interned
// string.
type ID = dict.ID

// Well-known property URIs. The paper writes them ≺sc, ≺sp, ←↩d, ↪→r.
const (
	TypeURI          = "rdf:type"
	SubClassOfURI    = "rdfs:subClassOf"
	SubPropertyOfURI = "rdfs:subPropertyOf"
	DomainURI        = "rdfs:domain"
	RangeURI         = "rdfs:range"
)

// Triple is one weighted RDF statement.
type Triple struct {
	S, P, O ID
	W       float64
}

// Pair is a (subject, object) pair of some property's statements.
type Pair struct{ S, O ID }
type spKey struct{ a, b ID }
type key3 struct{ s, p, o ID }

// Graph is a weighted RDF graph with SP and PO indexes. The zero value is
// not usable; call New.
//
// A Graph is safe for concurrent readers once mutation stops.
type Graph struct {
	dict    *dict.Dict
	triples []Triple
	weights map[key3]float64

	sp     map[spKey][]ID // (s,p) → objects
	po     map[spKey][]ID // (p,o) → subjects
	byProp map[ID][]Pair  // p → (s,o) pairs, weight-1 triples only

	// Frozen graphs (FromTriplesFrozen) answer the lookups above from the
	// spo / pos sorted permutations instead of the maps, and reject every
	// mutation.
	frozen   bool
	spo, pos []int32

	typeP, scP, spP, domP, rngP ID

	saturated bool
}

// New returns an empty graph sharing the given dictionary.
func New(d *dict.Dict) *Graph {
	g := &Graph{
		dict:    d,
		weights: make(map[key3]float64),
		sp:      make(map[spKey][]ID),
		po:      make(map[spKey][]ID),
		byProp:  make(map[ID][]Pair),
	}
	g.typeP = d.Intern(TypeURI)
	g.scP = d.Intern(SubClassOfURI)
	g.spP = d.Intern(SubPropertyOfURI)
	g.domP = d.Intern(DomainURI)
	g.rngP = d.Intern(RangeURI)
	return g
}

// NewWithDict returns an empty graph with a fresh private dictionary.
func NewWithDict() *Graph { return New(dict.New()) }

// FromTriples reconstructs a graph from a triple list previously obtained
// via Triples, rebuilding all indexes without re-running entailment. When
// saturated is true the triples are assumed to already be a closure and
// the graph resumes incremental maintenance from them.
func FromTriples(d *dict.Dict, triples []Triple, saturated bool) *Graph {
	g := New(d)
	for _, t := range triples {
		g.insert(t.S, t.P, t.O, t.W)
	}
	g.saturated = saturated
	return g
}

// Dict returns the dictionary shared by the graph.
func (g *Graph) Dict() *dict.Dict { return g.dict }

// Len returns the number of distinct (s,p,o) statements.
func (g *Graph) Len() int { return len(g.triples) }

// Triples returns the underlying statements in insertion order. The slice
// is shared with the graph and must not be modified.
func (g *Graph) Triples() []Triple { return g.triples }

// Add interns the three strings and adds the triple with weight 1.
func (g *Graph) Add(s, p, o string) bool {
	return g.AddWeighted(s, p, o, 1)
}

// AddWeighted interns the three strings and adds the weighted triple.
func (g *Graph) AddWeighted(s, p, o string, w float64) bool {
	return g.AddT(g.dict.Intern(s), g.dict.Intern(p), g.dict.Intern(o), w)
}

// AddT adds one weighted triple and reports whether it was new. Re-adding
// an existing statement keeps the maximum weight seen. If the graph was
// already saturated and the new triple has weight 1, its consequences are
// derived immediately (incremental saturation, cf. the paper's citation of
// incremental RDF maintenance [10]).
func (g *Graph) AddT(s, p, o ID, w float64) bool {
	if g.frozen {
		panic("rdf: frozen graph is read-only")
	}
	if w < 0 || w > 1 {
		panic(fmt.Sprintf("rdf: weight %v out of [0,1]", w))
	}
	isNew := g.insert(s, p, o, w)
	if isNew && w == 1 && g.saturated {
		g.saturateFrom([]Triple{{S: s, P: p, O: o, W: 1}})
	}
	return isNew
}

// insert performs the raw indexed insertion without entailment.
func (g *Graph) insert(s, p, o ID, w float64) bool {
	k := key3{s, p, o}
	if old, ok := g.weights[k]; ok {
		if w > old {
			g.weights[k] = w
			if old < 1 && w == 1 {
				// The statement was not available for reasoning before but
				// is now; index it for entailment.
				g.byProp[p] = append(g.byProp[p], Pair{s, o})
				if g.saturated {
					g.saturateFrom([]Triple{{S: s, P: p, O: o, W: 1}})
				}
			}
			g.fixWeight(k, w)
		}
		return false
	}
	g.weights[k] = w
	g.triples = append(g.triples, Triple{S: s, P: p, O: o, W: w})
	g.sp[spKey{s, p}] = append(g.sp[spKey{s, p}], o)
	g.po[spKey{p, o}] = append(g.po[spKey{p, o}], s)
	if w == 1 {
		g.byProp[p] = append(g.byProp[p], Pair{s, o})
	}
	return true
}

func (g *Graph) fixWeight(k key3, w float64) {
	for i := range g.triples {
		t := &g.triples[i]
		if t.S == k.s && t.P == k.p && t.O == k.o {
			t.W = w
			return
		}
	}
}

// Has reports whether the statement (s,p,o) is present with any weight.
func (g *Graph) Has(s, p, o ID) bool {
	if g.frozen {
		_, ok := g.frozenWeight(s, p, o)
		return ok
	}
	_, ok := g.weights[key3{s, p, o}]
	return ok
}

// HasStr is Has over strings; unknown strings yield false.
func (g *Graph) HasStr(s, p, o string) bool {
	si, ok1 := g.dict.Lookup(s)
	pi, ok2 := g.dict.Lookup(p)
	oi, ok3 := g.dict.Lookup(o)
	if !ok1 || !ok2 || !ok3 {
		return false
	}
	return g.Has(si, pi, oi)
}

// Weight returns the weight of the statement if present.
func (g *Graph) Weight(s, p, o ID) (float64, bool) {
	if g.frozen {
		return g.frozenWeight(s, p, o)
	}
	w, ok := g.weights[key3{s, p, o}]
	return w, ok
}

// Objects returns all o with (s,p,o) in the graph. A frozen graph
// materialises the (small) answer per call.
func (g *Graph) Objects(s, p ID) []ID {
	if g.frozen {
		return g.frozenObjects(s, p)
	}
	return g.sp[spKey{s, p}]
}

// Subjects returns all s with (s,p,o) in the graph.
func (g *Graph) Subjects(p, o ID) []ID {
	if g.frozen {
		return g.frozenSubjects(p, o)
	}
	return g.po[spKey{p, o}]
}

// PropertyPairs returns the (s,o) pairs of all weight-1 triples with
// property p.
func (g *Graph) PropertyPairs(p ID) []Pair {
	if g.frozen {
		return g.frozenPropertyPairs(p)
	}
	return g.byProp[p]
}

// Saturate computes the RDFS closure of the weight-1 statements, applying
// the immediate-entailment rules of Figure 2 to a fixpoint:
//
//	(a ≺sc b), (b ≺sc c)  ⊢ a ≺sc c
//	(a ≺sp b), (b ≺sp c)  ⊢ a ≺sp c
//	(s type a), (a ≺sc b) ⊢ s type b
//	(s p o),   (p ≺sp q)  ⊢ s q o
//	(p ←↩d c), (s p o)    ⊢ s type c
//	(p ↪→r c), (s p o)    ⊢ o type c
//
// Entailed triples always have weight 1. Saturate returns the number of
// triples inferred; it is idempotent.
func (g *Graph) Saturate() int {
	if g.frozen {
		panic("rdf: frozen graph is read-only")
	}
	seed := make([]Triple, 0, len(g.triples))
	for _, t := range g.triples {
		if t.W == 1 {
			seed = append(seed, t)
		}
	}
	n := g.saturateFrom(seed)
	g.saturated = true
	return n
}

// saturateFrom runs the entailment worklist starting from the given delta.
func (g *Graph) saturateFrom(delta []Triple) int {
	inferred := 0
	push := func(s, p, o ID) {
		if g.insert(s, p, o, 1) {
			delta = append(delta, Triple{S: s, P: p, O: o, W: 1})
			inferred++
		}
	}
	for len(delta) > 0 {
		t := delta[len(delta)-1]
		delta = delta[:len(delta)-1]
		s, p, o := t.S, t.P, t.O
		switch p {
		case g.scP:
			// Transitivity in both join directions.
			for _, c := range g.Objects(o, g.scP) {
				push(s, g.scP, c)
			}
			for _, a := range g.Subjects(g.scP, s) {
				push(a, g.scP, o)
			}
			// Instances of the subclass are instances of the superclass.
			for _, x := range g.Subjects(g.typeP, s) {
				push(x, g.typeP, o)
			}
		case g.spP:
			for _, c := range g.Objects(o, g.spP) {
				push(s, g.spP, c)
			}
			for _, a := range g.Subjects(g.spP, s) {
				push(a, g.spP, o)
			}
			// Statements using the subproperty also hold for the
			// superproperty.
			for _, pair := range g.PropertyPairs(s) {
				push(pair.S, o, pair.O)
			}
		case g.typeP:
			for _, c := range g.Objects(o, g.scP) {
				push(s, g.typeP, c)
			}
		case g.domP:
			for _, pair := range g.PropertyPairs(s) {
				push(pair.S, g.typeP, o)
			}
		case g.rngP:
			for _, pair := range g.PropertyPairs(s) {
				push(pair.O, g.typeP, o)
			}
		}
		// Rules triggered by a plain statement (s p o) joining with the
		// schema of p.
		for _, q := range g.Objects(p, g.spP) {
			push(s, q, o)
		}
		for _, c := range g.Objects(p, g.domP) {
			push(s, g.typeP, c)
		}
		for _, c := range g.Objects(p, g.rngP) {
			push(o, g.typeP, c)
		}
	}
	return inferred
}

// Saturated reports whether Saturate has run (subsequent weight-1
// insertions are then maintained incrementally).
func (g *Graph) Saturated() bool { return g.saturated }

// Ext returns the extension of keyword k per Definition 2.1:
// k itself plus every b with (b type k), (b ≺sc k) or (b ≺sp k) in the
// (saturated) graph. The result is sorted and duplicate-free; k is always
// first.
func (g *Graph) Ext(k ID) []ID {
	seen := map[ID]struct{}{k: {}}
	out := []ID{k}
	collect := func(ids []ID) {
		for _, b := range ids {
			if _, dup := seen[b]; dup {
				continue
			}
			seen[b] = struct{}{}
			out = append(out, b)
		}
	}
	collect(g.Subjects(g.typeP, k))
	collect(g.Subjects(g.scP, k))
	collect(g.Subjects(g.spP, k))
	sort.Slice(out[1:], func(i, j int) bool { return out[i+1] < out[j+1] })
	return out
}

// ExtStr is Ext over a keyword string. A keyword never interned has only
// itself in its extension; it is interned on the fly so callers always get
// a usable ID back.
func (g *Graph) ExtStr(keyword string) []ID {
	return g.Ext(g.dict.Intern(keyword))
}
