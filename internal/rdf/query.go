package rdf

import (
	"fmt"
	"sort"
	"strings"

	"s3/internal/dict"
)

// This file implements basic-graph-pattern (BGP) matching over a Graph —
// the conjunctive core of SPARQL. The paper uses such queries in two
// places: §1 notes that an S3 instance can be exploited "through
// structured XML and/or RDF queries", and §2.2's extensibility mechanism
// derives new social edges from query results ("if two people worked the
// same year for a company of less than 10 employees ... a query retrieves
// all such user pairs").

// Term is one position of a triple pattern: either a constant or a
// variable.
type Term struct {
	// Var is the variable name (without '?'); empty for constants.
	Var string
	// Value is the constant (ignored when Var != "").
	Value string
}

// V makes a variable term.
func V(name string) Term { return Term{Var: name} }

// C makes a constant term.
func C(value string) Term { return Term{Value: value} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// Pattern is one triple pattern.
type Pattern struct {
	S, P, O Term
}

// ParsePattern parses "?s rdf:type S3:user"-style patterns: three
// whitespace-separated terms, '?'-prefixed terms being variables. Constant
// terms may be quoted to include spaces.
func ParsePattern(s string) (Pattern, error) {
	fields, err := splitTerms(s)
	if err != nil {
		return Pattern{}, err
	}
	if len(fields) != 3 {
		return Pattern{}, fmt.Errorf("rdf: pattern %q must have 3 terms, has %d", s, len(fields))
	}
	mk := func(f string) Term {
		if strings.HasPrefix(f, "?") {
			return V(f[1:])
		}
		return C(f)
	}
	return Pattern{S: mk(fields[0]), P: mk(fields[1]), O: mk(fields[2])}, nil
}

func splitTerms(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] == '"' {
			end := strings.IndexByte(s[1:], '"')
			if end < 0 {
				return nil, fmt.Errorf("rdf: unterminated quote in %q", s)
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
			continue
		}
		sp := strings.IndexAny(s, " \t")
		if sp < 0 {
			out = append(out, s)
			break
		}
		out = append(out, s[:sp])
		s = strings.TrimSpace(s[sp:])
	}
	return out, nil
}

// Binding maps variable names to dictionary ids.
type Binding map[string]ID

// Resolve returns the string bound to a variable.
func (b Binding) Resolve(d *dict.Dict, name string) (string, bool) {
	id, ok := b[name]
	if !ok {
		return "", false
	}
	return d.String(id), true
}

// Query evaluates the conjunction of patterns and returns all variable
// bindings, in a deterministic order. Matching considers every statement
// regardless of weight (weights qualify certainty, not existence).
//
// Evaluation is by backtracking joins with a greedy most-selective-first
// pattern order — ample for the instance-scale schemas S3 uses; it is not
// a full SPARQL engine.
func (g *Graph) Query(patterns []Pattern) ([]Binding, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("rdf: empty query")
	}
	// Pre-resolve constants; a constant never interned cannot match.
	cpats := make([]cpat, 0, len(patterns))
	for _, pat := range patterns {
		var cp cpat
		ok := true
		set := func(t Term, id *ID, v *string) {
			if t.IsVar() {
				*v = t.Var
				return
			}
			got, found := g.dict.Lookup(t.Value)
			if !found {
				ok = false
				return
			}
			*id = got
		}
		set(pat.S, &cp.s, &cp.sv)
		set(pat.P, &cp.p, &cp.pv)
		set(pat.O, &cp.o, &cp.ov)
		if !ok {
			return nil, nil
		}
		cpats = append(cpats, cp)
	}

	var results []Binding
	binding := make(Binding)

	var match func(i int, order []int)
	candidates := func(cp cpat, b Binding) []Triple {
		s, sBound := constOrBound(cp.s, cp.sv, b)
		p, pBound := constOrBound(cp.p, cp.pv, b)
		o, oBound := constOrBound(cp.o, cp.ov, b)
		switch {
		case sBound && pBound:
			var out []Triple
			for _, obj := range g.Objects(s, p) {
				if !oBound || obj == o {
					out = append(out, Triple{S: s, P: p, O: obj})
				}
			}
			return out
		case pBound && oBound:
			var out []Triple
			for _, sub := range g.Subjects(p, o) {
				out = append(out, Triple{S: sub, P: p, O: o})
			}
			return out
		case pBound:
			var out []Triple
			for _, pr := range g.PropertyPairs(p) {
				if sBound && pr.S != s {
					continue
				}
				if oBound && pr.O != o {
					continue
				}
				out = append(out, Triple{S: pr.S, P: p, O: pr.O})
			}
			// PropertyPairs only indexes weight-1 statements; scan the
			// weighted remainder.
			for _, t := range g.triples {
				if t.W == 1 || t.P != p {
					continue
				}
				if sBound && t.S != s {
					continue
				}
				if oBound && t.O != o {
					continue
				}
				out = append(out, t)
			}
			return out
		default:
			var out []Triple
			for _, t := range g.triples {
				if sBound && t.S != s {
					continue
				}
				if oBound && t.O != o {
					continue
				}
				out = append(out, t)
			}
			return out
		}
	}

	order := selectivityOrder(cpats)
	match = func(i int, order []int) {
		if i == len(order) {
			out := make(Binding, len(binding))
			for k, v := range binding {
				out[k] = v
			}
			results = append(results, out)
			return
		}
		cp := cpats[order[i]]
		for _, t := range candidates(cp, binding) {
			var bound []string
			ok := true
			tryBind := func(v string, id ID) {
				if !ok || v == "" {
					return
				}
				if prev, exists := binding[v]; exists {
					if prev != id {
						ok = false
					}
					return
				}
				binding[v] = id
				bound = append(bound, v)
			}
			tryBind(cp.sv, t.S)
			tryBind(cp.pv, t.P)
			tryBind(cp.ov, t.O)
			if ok {
				match(i+1, order)
			}
			for _, v := range bound {
				delete(binding, v)
			}
		}
	}
	match(0, order)
	sortBindings(g.dict, results)
	return results, nil
}

func constOrBound(c ID, v string, b Binding) (ID, bool) {
	if v == "" {
		return c, true
	}
	if id, ok := b[v]; ok {
		return id, true
	}
	return 0, false
}

// cpat is a compiled pattern: resolved constants plus variable names
// ("" marks a constant position).
type cpat struct {
	s, p, o    ID
	sv, pv, ov string
}

// selectivityOrder orders patterns so the most constrained run first
// (more constants = earlier). Variables bound by earlier patterns make
// later ones effectively constrained too, but this static heuristic is
// enough at schema scale.
func selectivityOrder(cpats []cpat) []int {
	order := make([]int, len(cpats))
	for i := range order {
		order[i] = i
	}
	consts := func(i int) int {
		n := 0
		if cpats[i].sv == "" {
			n++
		}
		if cpats[i].pv == "" {
			n++
		}
		if cpats[i].ov == "" {
			n++
		}
		return n
	}
	sort.SliceStable(order, func(a, b int) bool { return consts(order[a]) > consts(order[b]) })
	return order
}

// sortBindings orders results deterministically by their sorted
// variable/value pairs.
func sortBindings(d *dict.Dict, bs []Binding) {
	key := func(b Binding) string {
		var parts []string
		for k, v := range b {
			parts = append(parts, k+"="+d.String(v))
		}
		sort.Strings(parts)
		return strings.Join(parts, ";")
	}
	sort.Slice(bs, func(i, j int) bool { return key(bs[i]) < key(bs[j]) })
}

// QueryStrings is Query over "?s p o" pattern strings.
func (g *Graph) QueryStrings(patterns ...string) ([]Binding, error) {
	ps := make([]Pattern, 0, len(patterns))
	for _, s := range patterns {
		p, err := ParsePattern(s)
		if err != nil {
			return nil, err
		}
		ps = append(ps, p)
	}
	return g.Query(ps)
}
