package rdf

import (
	"bytes"
	"strings"
	"testing"
)

func sampleGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewWithDict()
	g.Add("u1", TypeURI, "S3:user")
	g.Add("u2", TypeURI, "S3:user")
	g.Add("d1", TypeURI, "S3:doc")
	g.Add("d1", "S3:postedBy", "u1")
	g.Add("d2", TypeURI, "S3:doc")
	g.Add("d2", "S3:postedBy", "u2")
	g.Add("d2", "S3:commentsOn", "d1")
	g.AddWeighted("u1", "S3:social", "u2", 0.5)
	return g
}

func TestQuerySinglePattern(t *testing.T) {
	g := sampleGraph(t)
	bs, err := g.QueryStrings("?u rdf:type S3:user")
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 2 {
		t.Fatalf("bindings = %d, want 2", len(bs))
	}
	var users []string
	for _, b := range bs {
		u, ok := b.Resolve(g.Dict(), "u")
		if !ok {
			t.Fatal("variable u unbound")
		}
		users = append(users, u)
	}
	if users[0] != "u1" || users[1] != "u2" {
		t.Fatalf("users = %v (order must be deterministic)", users)
	}
}

// The §2.2-style extensibility query: users connected through a comment on
// one of their documents.
func TestQueryJoin(t *testing.T) {
	g := sampleGraph(t)
	bs, err := g.QueryStrings(
		"?c S3:commentsOn ?d",
		"?c S3:postedBy ?author",
		"?d S3:postedBy ?orig",
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 1 {
		t.Fatalf("bindings = %d, want 1", len(bs))
	}
	author, _ := bs[0].Resolve(g.Dict(), "author")
	orig, _ := bs[0].Resolve(g.Dict(), "orig")
	if author != "u2" || orig != "u1" {
		t.Fatalf("join gave author=%s orig=%s", author, orig)
	}
}

func TestQuerySharedVariableWithinPattern(t *testing.T) {
	g := NewWithDict()
	g.Add("a", "knows", "a") // self-loop
	g.Add("a", "knows", "b")
	bs, err := g.QueryStrings("?x knows ?x")
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 1 {
		t.Fatalf("bindings = %d, want only the self-loop", len(bs))
	}
}

func TestQueryMatchesWeightedStatements(t *testing.T) {
	g := sampleGraph(t)
	bs, err := g.QueryStrings("?a S3:social ?b")
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 1 {
		t.Fatalf("weighted statement not matched: %v", bs)
	}
}

func TestQueryVariablePredicate(t *testing.T) {
	g := sampleGraph(t)
	bs, err := g.QueryStrings("d2 ?p d1")
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 1 {
		t.Fatalf("bindings = %d, want 1", len(bs))
	}
	if p, _ := bs[0].Resolve(g.Dict(), "p"); p != "S3:commentsOn" {
		t.Fatalf("p = %s", p)
	}
}

func TestQueryUnknownConstantYieldsNoResults(t *testing.T) {
	g := sampleGraph(t)
	bs, err := g.QueryStrings("?u rdf:type NeverSeen")
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 0 {
		t.Fatalf("bindings = %v, want none", bs)
	}
}

func TestQueryEmptyAndParseErrors(t *testing.T) {
	g := sampleGraph(t)
	if _, err := g.Query(nil); err == nil {
		t.Fatal("expected error for empty query")
	}
	if _, err := ParsePattern("only two"); err == nil {
		t.Fatal("expected error for 2-term pattern")
	}
	if _, err := ParsePattern(`a b "unterminated`); err == nil {
		t.Fatal("expected error for unterminated quote")
	}
	if p, err := ParsePattern(`?s says "hello world"`); err != nil || !p.S.IsVar() || p.O.Value != "hello world" {
		t.Fatalf("quoted pattern parse: %+v, %v", p, err)
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	g := sampleGraph(t)
	var buf bytes.Buffer
	if err := g.WriteNTriples(&buf); err != nil {
		t.Fatal(err)
	}
	g2 := NewWithDict()
	n, err := g2.ReadNTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != g.Len() {
		t.Fatalf("read %d statements, want %d", n, g.Len())
	}
	for _, tr := range g.Triples() {
		s := g.Dict().String(tr.S)
		p := g.Dict().String(tr.P)
		o := g.Dict().String(tr.O)
		if !g2.HasStr(s, p, o) {
			t.Fatalf("statement (%s %s %s) lost in round-trip", s, p, o)
		}
	}
	// Weight preserved.
	s, _ := g2.Dict().Lookup("u1")
	p, _ := g2.Dict().Lookup("S3:social")
	o, _ := g2.Dict().Lookup("u2")
	if w, ok := g2.Weight(s, p, o); !ok || w != 0.5 {
		t.Fatalf("weight = %v,%v, want 0.5", w, ok)
	}
}

func TestNTriplesLiteralsAndComments(t *testing.T) {
	src := `
# a comment
<ent1> <foaf:name> "John Smith" .
<a> <b> <c> 0.25 .

<x> <y> z .
`
	g := NewWithDict()
	n, err := g.ReadNTriples(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("read %d statements, want 3", n)
	}
	if !g.HasStr("ent1", "foaf:name", "John Smith") {
		t.Fatal("quoted literal lost")
	}
	s, _ := g.Dict().Lookup("a")
	p, _ := g.Dict().Lookup("b")
	o, _ := g.Dict().Lookup("c")
	if w, _ := g.Weight(s, p, o); w != 0.25 {
		t.Fatalf("weight = %v, want 0.25", w)
	}
}

func TestNTriplesErrors(t *testing.T) {
	cases := []string{
		"<a> <b .",
		`<a> <b> "unterminated .`,
		"<a> <b> <c> 1.5 .",
		"<a> <b> <c> nope .",
		"<a> .",
	}
	for _, src := range cases {
		g := NewWithDict()
		if _, err := g.ReadNTriples(strings.NewReader(src)); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

// Round-tripping a generated ontology preserves Ext results.
func TestNTriplesPreservesExtensions(t *testing.T) {
	g := NewWithDict()
	g.Add("ms", SubClassOfURI, "degree")
	g.Add("bs", SubClassOfURI, "degree")
	g.Saturate()

	var buf bytes.Buffer
	if err := g.WriteNTriples(&buf); err != nil {
		t.Fatal(err)
	}
	g2 := NewWithDict()
	if _, err := g2.ReadNTriples(&buf); err != nil {
		t.Fatal(err)
	}
	g2.Saturate()
	if len(g2.ExtStr("degree")) != len(g.ExtStr("degree")) {
		t.Fatal("extension changed across round-trip")
	}
}
