// Frozen graphs: a read-only view over an already-saturated triple list
// that answers the index lookups (Objects, Subjects, PropertyPairs, Has,
// Weight) by binary search over two precomputed sorted permutations
// instead of hash maps. Nothing is inserted and no per-triple allocation
// happens on construction, which is what lets a memory-mapped snapshot
// expose its ontology without materialising it: the triple array is the
// mapped section itself and the permutations are two more mapped arrays.
package rdf

import (
	"fmt"
	"sort"

	"s3/internal/dict"
)

// FromTriplesFrozen builds a read-only saturated graph over triples, with
// spo and pos the permutations of triple indices sorted by (S, P, O) and
// (P, O, S) respectively (as produced by TriplePerms). All three slices
// are retained without copying.
//
// Structure is validated — triple ids against the dictionary, permutation
// entries against the triple count — so no lookup can panic; the *sort
// order* of the permutations is trusted (the caller has checksummed the
// bytes and trusts their writer; a mis-sorted index would merely return
// wrong extension sets, exactly like a mis-sorted triple list fed to the
// classic FromTriples would index wrong statements).
//
// A frozen graph rejects every mutation (Add, AddT, Saturate); it is safe
// for concurrent readers by construction.
func FromTriplesFrozen(d *dict.Dict, triples []Triple, spo, pos []int32) (*Graph, error) {
	nd := ID(d.Len())
	for i, t := range triples {
		if t.S >= nd || t.P >= nd || t.O >= nd {
			return nil, fmt.Errorf("rdf: triple %d references ids outside dictionary of %d", i, nd)
		}
	}
	check := func(perm []int32, name string) error {
		if len(perm) != len(triples) {
			return fmt.Errorf("rdf: %s permutation has %d entries for %d triples", name, len(perm), len(triples))
		}
		for _, p := range perm {
			if p < 0 || int(p) >= len(triples) {
				return fmt.Errorf("rdf: %s permutation entry %d out of range", name, p)
			}
		}
		return nil
	}
	if err := check(spo, "spo"); err != nil {
		return nil, err
	}
	if err := check(pos, "pos"); err != nil {
		return nil, err
	}
	g := &Graph{
		dict:      d,
		triples:   triples,
		spo:       spo,
		pos:       pos,
		frozen:    true,
		saturated: true,
	}
	// The well-known vocabulary is resolved without interning: a frozen
	// graph never grows the dictionary. An ontology that never mentions a
	// vocabulary term keeps the NoID sentinel, which matches no triple.
	lookup := func(uri string) ID {
		if id, ok := d.Lookup(uri); ok {
			return id
		}
		return dict.NoID
	}
	g.typeP = lookup(TypeURI)
	g.scP = lookup(SubClassOfURI)
	g.spP = lookup(SubPropertyOfURI)
	g.domP = lookup(DomainURI)
	g.rngP = lookup(RangeURI)
	return g, nil
}

// TriplePerms computes the (S,P,O)- and (P,O,S)-sorted permutations of a
// triple list — the indexes FromTriplesFrozen wants back. Triples are
// duplicate-free, so both orders are total and the result deterministic.
func TriplePerms(triples []Triple) (spo, pos []int32) {
	spo = make([]int32, len(triples))
	pos = make([]int32, len(triples))
	for i := range spo {
		spo[i] = int32(i)
		pos[i] = int32(i)
	}
	sort.Slice(spo, func(i, j int) bool { return lessSPO(triples[spo[i]], triples[spo[j]]) })
	sort.Slice(pos, func(i, j int) bool { return lessPOS(triples[pos[i]], triples[pos[j]]) })
	return spo, pos
}

func lessSPO(a, b Triple) bool {
	if a.S != b.S {
		return a.S < b.S
	}
	if a.P != b.P {
		return a.P < b.P
	}
	return a.O < b.O
}

func lessPOS(a, b Triple) bool {
	if a.P != b.P {
		return a.P < b.P
	}
	if a.O != b.O {
		return a.O < b.O
	}
	return a.S < b.S
}

// frozenObjects answers Objects by binary search over the spo
// permutation; the objects of one (s, p) are a contiguous run.
func (g *Graph) frozenObjects(s, p ID) []ID {
	lo := sort.Search(len(g.spo), func(i int) bool {
		t := g.triples[g.spo[i]]
		return t.S > s || (t.S == s && t.P >= p)
	})
	var out []ID
	for i := lo; i < len(g.spo); i++ {
		t := g.triples[g.spo[i]]
		if t.S != s || t.P != p {
			break
		}
		out = append(out, t.O)
	}
	return out
}

// frozenSubjects answers Subjects by binary search over the pos
// permutation.
func (g *Graph) frozenSubjects(p, o ID) []ID {
	lo := sort.Search(len(g.pos), func(i int) bool {
		t := g.triples[g.pos[i]]
		return t.P > p || (t.P == p && t.O >= o)
	})
	var out []ID
	for i := lo; i < len(g.pos); i++ {
		t := g.triples[g.pos[i]]
		if t.P != p || t.O != o {
			break
		}
		out = append(out, t.S)
	}
	return out
}

// frozenPropertyPairs answers PropertyPairs (weight-1 statements of one
// property) from the pos permutation's per-property run.
func (g *Graph) frozenPropertyPairs(p ID) []Pair {
	lo := sort.Search(len(g.pos), func(i int) bool {
		return g.triples[g.pos[i]].P >= p
	})
	var out []Pair
	for i := lo; i < len(g.pos); i++ {
		t := g.triples[g.pos[i]]
		if t.P != p {
			break
		}
		if t.W == 1 {
			out = append(out, Pair{t.S, t.O})
		}
	}
	return out
}

// frozenWeight answers Weight/Has by exact binary search over spo.
func (g *Graph) frozenWeight(s, p, o ID) (float64, bool) {
	key := Triple{S: s, P: p, O: o}
	lo := sort.Search(len(g.spo), func(i int) bool {
		return !lessSPO(g.triples[g.spo[i]], key)
	})
	if lo < len(g.spo) {
		if t := g.triples[g.spo[lo]]; t.S == s && t.P == p && t.O == o {
			return t.W, true
		}
	}
	return 0, false
}
