// In-process ShardExecutor implementations.
//
// Two variants share all shard-side round logic (shardState):
//
//   - the fan-out executor of ShardedEngine shares ONE proximity iterator
//     across every shard of the process — whichever executor reaches a
//     round first advances it, the rest reuse the layer (roundDriver);
//   - NewShardExecutor gives a shard its own iterator, created at Begin —
//     the worker-process half of distributed serving, where each process
//     advances an identical exploration over the shared substrate.
//
// Both perform the identical floating-point operations in the identical
// order, so their round responses — and therefore the coordinated answer
// — are byte-identical.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"s3/internal/graph"
	"s3/internal/obs"
	"s3/internal/proxcache"
	"s3/internal/score"
)

// roundDriver serialises a shared proximity iterator across the executors
// of one search: the first executor to request a round steps the
// iterator; later requests for the same round reuse the captured layer.
// The coordinator gathers every executor before starting the next round,
// so the iterator-owned slices (discovered, AllProx) stay valid for the
// round's readers.
type roundDriver struct {
	mu sync.Mutex
	it *score.Iterator

	round      int
	discovered []graph.NID
	reached    int
	tail       float64
	sourceTail float64
	done       bool

	// Optional one-pass discovery routing for in-process fan-out: with
	// many executors sharing the iterator, the step owner routes each
	// discovered node to its owning shard once, instead of every
	// executor scanning the whole list (O(shards × discovered)). A
	// component mapped to a negative shard is hosted elsewhere (a host
	// process serving a subset of the set) and is skipped.
	in        *graph.Instance
	compShard []int32
	routed    [][]graph.NID

	// steps, when non-nil, counts actual iterator steps — once per round
	// regardless of how many executors share the driver, which is the
	// observable proof that co-hosted shards share one exploration.
	steps *atomic.Uint64
}

func newRoundDriver(it *score.Iterator) *roundDriver {
	return &roundDriver{it: it, done: it.Done(), tail: it.TailBound(), sourceTail: it.SourceTailBound()}
}

// withRouting enables per-shard discovery routing (ShardedEngine wiring).
func (d *roundDriver) withRouting(in *graph.Instance, compShard []int32, shards int) *roundDriver {
	d.in, d.compShard = in, compShard
	d.routed = make([][]graph.NID, shards)
	return d
}

// roundState is the captured per-round iterator output.
type roundState struct {
	discovered []graph.NID
	routed     [][]graph.NID // per shard, when routing is enabled
	reached    int
	n          int
	tail       float64
	sourceTail float64
	done       bool
	prox       []float64
}

// advance brings the shared iterator to the target round (stepping at
// most once per round across all executors) and returns the captured
// layer.
func (d *roundDriver) advance(target int) roundState {
	d.mu.Lock()
	defer d.mu.Unlock()
	for d.round < target {
		d.discovered = d.it.Step()
		if d.steps != nil {
			d.steps.Add(1)
		}
		d.reached += len(d.discovered)
		d.round++
		d.tail = d.it.TailBound()
		d.sourceTail = d.it.SourceTailBound()
		d.done = d.it.Done()
		if d.compShard != nil {
			// Route once, in discovery order (the order admission runs in).
			for s := range d.routed {
				d.routed[s] = d.routed[s][:0]
			}
			for _, nd := range d.discovered {
				if c := d.in.CompOf(nd); c >= 0 {
					if s := d.compShard[c]; s >= 0 {
						d.routed[s] = append(d.routed[s], nd)
					}
				}
			}
		}
	}
	return roundState{
		discovered: d.discovered,
		routed:     d.routed,
		reached:    d.reached,
		n:          d.round,
		tail:       d.tail,
		sourceTail: d.sourceTail,
		done:       d.done,
		prox:       d.it.AllProx(),
	}
}

// current returns the driver's state without stepping (Finalize).
func (d *roundDriver) current() roundState {
	d.mu.Lock()
	defer d.mu.Unlock()
	return roundState{
		reached:    d.reached,
		n:          d.round,
		tail:       d.tail,
		sourceTail: d.sourceTail,
		done:       d.done,
		prox:       d.it.AllProx(),
	}
}

// LocalExecutor runs one shard's rounds in-process. Create with
// NewShardExecutor (own iterator) or let ShardedEngine wire the
// shared-iterator variant.
type LocalExecutor struct {
	e       *Engine
	workers int

	// drv is the iterator driver: shared across the executors of a
	// ShardedEngine search, private for NewShardExecutor.
	drv *roundDriver
	// shard is this executor's index into the driver's routed discovery
	// lists (-1 when the driver does not route).
	shard int
	// ownIterator defers iterator construction to Begin (spec carries
	// seeker and params).
	ownIterator bool

	// touched / rounds, when non-nil, receive the shard's fan-out and
	// per-round work counts (ShardedEngine wiring).
	touched *atomic.Uint64
	rounds  *atomic.Uint64

	// traced enables per-call span recording; span holds the most recent
	// call's subtree until TakeSpan collects it.
	traced bool
	span   *obs.Span

	// pc, when non-nil (own-iterator executors only), resumes Begin's
	// iterator from the deepest cached frontier for (seeker, params) and
	// publishes the deepened frontier back at End. Replayed layers are
	// bit-identical to a fresh exploration, so round responses — and the
	// coordinated answer — do not change; ckey/resumedN carry the
	// publication state between Begin and End.
	pc       *proxcache.Cache
	ckey     proxcache.Key
	resumedN int

	// steps, when non-nil (own-iterator executors only), counts the
	// iterator steps this executor's searches execute.
	steps *atomic.Uint64

	st    *shardState
	round int
}

// NewShardExecutor returns a self-driving executor over one shard engine:
// Begin creates a private proximity iterator for the spec's seeker, and
// every Round advances it one layer. This is the executor a worker
// process wraps behind a transport.
func NewShardExecutor(e *Engine, workers int) *LocalExecutor {
	return &LocalExecutor{e: e, workers: workers, shard: -1, ownIterator: true}
}

// WithCounters wires the shard's fan-out and round-work counters (both
// optional): touched increments on a Begin that matched components,
// rounds on every round that carried candidates. Workers expose these
// through /stats for rebalancing.
func (x *LocalExecutor) WithCounters(touched, rounds *atomic.Uint64) *LocalExecutor {
	x.touched, x.rounds = touched, rounds
	return x
}

// WithProxCache wires a seeker-proximity checkpoint cache into an
// own-iterator executor: Begin resumes from the deepest cached frontier
// for the spec's (seeker, params) and End publishes the deepened
// frontier back. It is how a distributed worker keeps repeated seekers'
// exploration state warm; no-op on shared-iterator executors (their
// iterator is owned by ShardedEngine, which has its own cache hook).
func (x *LocalExecutor) WithProxCache(pc *proxcache.Cache) *LocalExecutor {
	if x.ownIterator {
		x.pc = pc
	}
	return x
}

// ResumedDepth reports how many exploration rounds the current search's
// iterator replayed from a cached checkpoint (0 on a cold start, valid
// from Begin until End).
func (x *LocalExecutor) ResumedDepth() int { return x.resumedN }

// WithStepCounter wires a counter incremented once per actual iterator
// step (own-iterator executors only — a shared driver's owner counts).
func (x *LocalExecutor) WithStepCounter(steps *atomic.Uint64) *LocalExecutor {
	if x.ownIterator {
		x.steps = steps
	}
	return x
}

// WithTracing enables per-call span recording: each Begin, Round and
// Finalize builds a span subtree (with step/admit/bounds/select stage
// children) that TakeSpan hands to the coordinator's trace. Tracing is
// observational only — it never changes the shard's round responses.
func (x *LocalExecutor) WithTracing(on bool) *LocalExecutor {
	x.traced = on
	return x
}

// TakeSpan implements the coordinator's span collection: it returns the
// span subtree recorded by the most recent protocol call and clears it
// (nil when tracing is off).
func (x *LocalExecutor) TakeSpan() *obs.Span {
	sp := x.span
	x.span = nil
	return sp
}

// Begin implements ShardExecutor.
func (x *LocalExecutor) Begin(spec SearchSpec) (BeginInfo, error) {
	if spec.K <= 0 {
		return BeginInfo{}, fmt.Errorf("core: k must be positive, got %d", spec.K)
	}
	if int(spec.Seeker) < 0 || int(spec.Seeker) >= x.e.in.NumNodes() {
		return BeginInfo{}, fmt.Errorf("core: seeker %d outside instance", spec.Seeker)
	}
	if len(spec.Groups) == 0 {
		return BeginInfo{}, fmt.Errorf("core: empty keyword groups")
	}
	eps := spec.Epsilon
	if eps == 0 {
		eps = 1e-12
	}
	var sp *obs.Span
	if x.traced {
		sp = obs.NewSpan("exec.begin")
	}
	opts := Options{K: spec.K, Params: spec.Params, Workers: x.workers, Epsilon: eps}
	sc, err := score.NewScorer(x.e.in, x.e.ix, spec.Params, spec.Groups)
	if err != nil {
		return BeginInfo{}, err
	}
	matched := make(map[int32]struct{})
	for _, c := range x.e.ix.CompsForGroups(spec.Groups) {
		matched[c] = struct{}{}
	}
	if len(matched) > 0 && x.touched != nil {
		x.touched.Add(1)
	}
	x.st = &shardState{
		e:        x.e,
		sc:       sc,
		groups:   spec.Groups,
		opts:     opts,
		eps:      eps,
		matched:  matched,
		admitted: make(map[int32]struct{}),
	}
	x.round = 0
	if x.ownIterator {
		it, ckey, resumedN := openIterator(x.e.in, spec.Seeker, Options{Params: spec.Params, ProxCache: x.pc})
		x.drv = newRoundDriver(it)
		x.drv.steps = x.steps
		x.ckey, x.resumedN = ckey, resumedN
	}
	info := BeginInfo{Matched: len(matched), GroupMasses: make([][]int32, len(spec.Groups))}
	for gi, group := range spec.Groups {
		info.GroupMasses[gi] = make([]int32, len(group))
		for j, k := range group {
			info.GroupMasses[gi][j] = int32(x.e.ix.MaxCompEvents(k))
		}
	}
	if sp != nil {
		sp.SetInt("matched", int64(len(matched)))
		sp.End()
		x.span = sp
	}
	return info, nil
}

// Round implements ShardExecutor.
func (x *LocalExecutor) Round() (RoundInfo, error) {
	if x.st == nil || x.drv == nil {
		return RoundInfo{}, fmt.Errorf("core: Round without Begin")
	}
	var sp *obs.Span
	if x.traced {
		sp = obs.NewSpan("exec.round")
	}
	x.round++
	step := sp.StartChild("step")
	rs := x.drv.advance(x.round)
	step.End()
	st := x.st
	// Admit this round's newly discovered matching components, in
	// discovery order. A routing driver hands each executor only its own
	// shard's discoveries; an own-iterator executor (worker process)
	// scans its iterator's full output. Shards with no matching
	// components skip the scan entirely.
	disc := rs.discovered
	if x.shard >= 0 && rs.routed != nil {
		disc = rs.routed[x.shard]
	}
	if len(st.matched) > 0 {
		admit := sp.StartChild("admit")
		for _, nd := range disc {
			comp := st.e.in.CompOf(nd)
			if comp < 0 {
				continue
			}
			if _, ok := st.matched[comp]; !ok {
				continue
			}
			if _, dup := st.admitted[comp]; dup {
				continue
			}
			st.admitted[comp] = struct{}{}
			st.admitComponent(comp)
		}
		admit.End()
	}
	if len(st.cands) > 0 || len(st.matched) > 0 {
		bounds := sp.StartChild("bounds")
		st.computeBounds(rs.tail, rs.prox)
		bounds.End()
		sel := sp.StartChild("select")
		st.kept, st.uncertain = st.greedySelect()
		sel.End()
	} else {
		st.kept, st.uncertain = nil, nil
	}
	if x.rounds != nil && len(st.cands) > 0 {
		x.rounds.Add(1)
	}
	info := x.roundInfo(rs)
	if sp != nil {
		sp.SetInt("n", int64(rs.n))
		sp.SetInt("admitted", int64(len(st.admitted)))
		sp.SetInt("candidates", int64(len(st.cands)))
		sp.SetInt("kept", int64(len(st.kept)))
		sp.End()
		x.span = sp
	}
	return info, nil
}

// Finalize implements ShardExecutor.
func (x *LocalExecutor) Finalize() (RoundInfo, error) {
	if x.st == nil || x.drv == nil {
		return RoundInfo{}, fmt.Errorf("core: Finalize without Begin")
	}
	var sp *obs.Span
	if x.traced {
		sp = obs.NewSpan("exec.finalize")
	}
	rs := x.drv.current()
	st := x.st
	bounds := sp.StartChild("bounds")
	st.computeBounds(rs.tail, rs.prox)
	bounds.End()
	sel := sp.StartChild("select")
	st.kept, st.uncertain = st.greedySelect()
	sel.End()
	info := x.roundInfo(rs)
	if sp != nil {
		sp.SetInt("candidates", int64(len(st.cands)))
		sp.SetInt("kept", int64(len(st.kept)))
		sp.End()
		x.span = sp
	}
	return info, nil
}

// End implements ShardExecutor.
func (x *LocalExecutor) End() {
	x.st = nil
	if x.ownIterator {
		if x.pc != nil && x.drv != nil {
			// Publish the deepened frontier (deepen-only, so concurrent
			// searches racing to publish can only improve the cache). The
			// driver's mutex is free here: End is only called after every
			// round gathered.
			if it := x.drv.it; it.RecordedDepth() > x.resumedN {
				x.pc.Put(x.ckey, it.Checkpoint())
			}
		}
		x.drv = nil
		x.resumedN = 0
	}
}

// roundInfo serializes the shard state after a round.
func (x *LocalExecutor) roundInfo(rs roundState) RoundInfo {
	st := x.st
	info := RoundInfo{
		Kept:       make([]CandMeta, len(st.kept)),
		MaxOther:   st.maxOtherUpper(st.kept),
		Admitted:   len(st.admitted),
		Candidates: len(st.cands),
		Reached:    rs.reached,
		N:          rs.n,
		Tail:       rs.tail,
		SourceTail: rs.sourceTail,
		Done:       rs.done,
	}
	for i, c := range st.kept {
		info.Kept[i] = CandMeta{Doc: c.d, Lower: c.lower, Upper: c.upper}
	}
	if st.uncertain != nil {
		info.Uncertain = &CandMeta{Doc: st.uncertain.d, Lower: st.uncertain.lower, Upper: st.uncertain.upper}
	}
	return info
}
