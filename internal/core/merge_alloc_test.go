package core

import "testing"

// TestMergeScratchSteadyStateAllocs: Coordinate's per-round merge — the
// top-k fan-in plus the max-other sweep — must not allocate once the
// search's scratch is warm. Under -race the runtime allocates on its
// own, so only the op runs.
func TestMergeScratchSteadyStateAllocs(t *testing.T) {
	infos := []RoundInfo{
		{
			MaxOther: 0.3,
			Kept: []CandMeta{
				{Doc: 1, Lower: 0.5, Upper: 0.9},
				{Doc: 4, Lower: 0.3, Upper: 0.6},
			},
			Uncertain: &CandMeta{Doc: 11, Lower: 0.2, Upper: 0.55},
		},
		{
			MaxOther: 0.4,
			Kept: []CandMeta{
				{Doc: 2, Lower: 0.45, Upper: 0.8},
				{Doc: 7, Lower: 0.25, Upper: 0.5},
			},
		},
		{
			MaxOther: 0.1,
			Kept:     []CandMeta{{Doc: 9, Lower: 0.35, Upper: 0.7}},
		},
	}
	m := newMergeScratch(len(infos))
	sel, _ := m.mergedSelect(infos, 3)
	if len(sel) != 3 {
		t.Fatalf("warmup select returned %d results, want 3", len(sel))
	}
	avg := testing.AllocsPerRun(200, func() {
		sel, _ := m.mergedSelect(infos, 3)
		if len(sel) != 3 {
			t.Fatal("merged selection shrank")
		}
		if mo := mergedMaxOtherMeta(infos, sel); mo <= 0 {
			t.Fatal("max-other sweep lost the bound")
		}
	})
	if raceEnabled {
		t.Logf("merge: %.1f allocs/op under -race (not asserted)", avg)
		return
	}
	if avg != 0 {
		t.Errorf("merge: %.1f allocs/op in steady state, want 0", avg)
	}
}
