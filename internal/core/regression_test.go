package core

import (
	"testing"
	"time"

	"s3/internal/doc"
	"s3/internal/graph"
	"s3/internal/index"
	"s3/internal/score"
	"s3/internal/text"
)

// Regression: a matched component that is unreachable from the seeker,
// combined with fewer than k reachable candidates and a cyclic social
// graph (so the exploration border never empties), used to spin the
// search forever — the uncertainty/insufficient-candidates paths skipped
// the precision-floor stop. The search must terminate and return the
// reachable answer.
func TestUnreachableComponentTerminates(t *testing.T) {
	b := graph.NewBuilder(text.Analyzer{Lang: text.None})
	// Seeker island: a 2-cycle keeps the border alive forever.
	must(t, b.AddUser("seeker"))
	must(t, b.AddUser("friend"))
	must(t, b.AddSocial("seeker", "friend", 1, ""))
	must(t, b.AddSocial("friend", "seeker", 1, ""))
	must(t, b.AddDocument(&doc.Node{URI: "near", Keywords: []string{"kw"}}))
	must(t, b.AddPost("near", "friend"))

	// Far island: a matched component authored by a user nobody reaches.
	must(t, b.AddUser("hermit"))
	must(t, b.AddDocument(&doc.Node{URI: "far", Keywords: []string{"kw"}}))
	must(t, b.AddPost("far", "hermit"))

	in, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(in, index.Build(in))
	seeker, _ := in.NIDOf("seeker")

	done := make(chan struct{})
	var res []Result
	var stats Stats
	go func() {
		defer close(done)
		res, stats, err = e.Search(seeker, []string{"kw"}, Options{
			K: 5, Params: score.Params{Gamma: 1.5, Eta: 0.8},
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("search did not terminate on an unreachable matched component")
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].URI != "near" {
		t.Fatalf("results = %+v (stats %+v), want just the reachable document", res, stats)
	}
}

// The same shape at a larger k and with several unreachable components.
func TestManyUnreachableComponentsTerminate(t *testing.T) {
	b := graph.NewBuilder(text.Analyzer{Lang: text.None})
	must(t, b.AddUser("seeker"))
	must(t, b.AddUser("friend"))
	must(t, b.AddSocial("seeker", "friend", 1, ""))
	must(t, b.AddSocial("friend", "seeker", 0.5, ""))
	must(t, b.AddDocument(&doc.Node{URI: "reachable", Keywords: []string{"kw"}}))
	must(t, b.AddPost("reachable", "friend"))
	for i := 0; i < 5; i++ {
		u := "hermit" + string(rune('0'+i))
		d := "island" + string(rune('0'+i))
		must(t, b.AddUser(u))
		must(t, b.AddDocument(&doc.Node{URI: d, Keywords: []string{"kw"}}))
		must(t, b.AddPost(d, u))
	}
	in, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(in, index.Build(in))
	seeker, _ := in.NIDOf("seeker")

	start := time.Now()
	res, stats, err := e.Search(seeker, []string{"kw"}, Options{
		K: 10, Params: score.Params{Gamma: 1.25, Eta: 0.8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatalf("search took %v", time.Since(start))
	}
	if len(res) != 1 {
		t.Fatalf("results = %+v (stats %+v)", res, stats)
	}
}
