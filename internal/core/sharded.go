// Sharded S3k: the fan-out/merge engine over a component-partitioned
// instance.
//
// Components (§5.2) are independent for candidate generation — every
// connection of a candidate document lives in the candidate's own
// component — which makes them the natural unit of horizontal
// partitioning. Social proximity, by contrast, is defined over the whole
// network graph (§3.4 sums *all* paths, including paths through other
// shards' document and tag nodes), so every shard shares one proximity
// substrate: the shards of a ShardedEngine are projections of a single
// base instance, with identical node numbering, transition matrix and
// ontology, differing only in which components' index slices they own.
//
// A sharded search therefore runs lockstep rounds: advance the border
// proximity one layer and, per shard, admit newly discovered components,
// refresh candidate score intervals and compute the shard-local greedy
// selection. The per-shard selections are merged by score interval
// (topks.MergeTopK) and the global stop condition of Algorithm 2 is
// evaluated on the merged state. Because vertical neighbours always share
// a component (and hence a shard), the merged selection, its certainty
// and the dominating-bound test decompose exactly — the sharded answer is
// byte-identical to the single-engine answer, score intervals included
// (property-tested in sharded_test.go). The only non-deterministic stop
// is the wall-clock budget, which is any-time in the single engine too.
//
// The round protocol itself — executor interface, serializable messages,
// coordinator loop — lives in executor.go; ShardedEngine is the
// all-in-one-process deployment of it, wiring a LocalExecutor per shard
// over one shared proximity iterator.
package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"s3/internal/graph"
	"s3/internal/proxcache"
	"s3/internal/score"
)

// ShardedEngine answers queries over a component-partitioned instance by
// fanning each search out across per-shard engines and merging the
// per-shard answers. It is immutable (counters aside) and safe for
// concurrent Search calls.
type ShardedEngine struct {
	shards []*Engine
	// compShard maps a component id to the shard owning it (the per-round
	// discovery routing table).
	compShard []int32
	// touched counts, per shard, the searches for which the shard had at
	// least one matching component (the fan-out actually reached it);
	// rounds counts, per shard, the lockstep rounds the shard carried
	// candidate work in. Together they are the load signal a rebalancer
	// consumes.
	touched []atomic.Uint64
	rounds  []atomic.Uint64
}

// NewShardedEngine assembles a sharded engine from per-shard engines.
// Every shard must be built over a projection of the same base instance
// (identical node numbering), and together the shards must own every
// component exactly once. A single unprojected engine forms a valid
// one-shard set.
func NewShardedEngine(shards []*Engine) (*ShardedEngine, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("core: sharded engine needs at least one shard")
	}
	base := shards[0].in
	nComp := base.NumComponents()
	compShard := make([]int32, nComp)
	for i := range compShard {
		compShard[i] = -1
	}
	for i, e := range shards {
		if e == nil {
			return nil, fmt.Errorf("core: shard %d is nil", i)
		}
		if e.in.NumNodes() != base.NumNodes() || e.in.NumComponents() != nComp {
			return nil, fmt.Errorf("core: shard %d is not a projection of the same instance", i)
		}
		owned := e.in.OwnedComponents()
		if owned == nil {
			// An unprojected instance owns everything; that is only
			// consistent when it is the sole shard.
			if len(shards) != 1 {
				return nil, fmt.Errorf("core: shard %d is unprojected in a %d-shard set", i, len(shards))
			}
			for c := range compShard {
				compShard[c] = 0
			}
			break
		}
		for _, c := range owned {
			if compShard[c] != -1 {
				return nil, fmt.Errorf("core: component %d owned by shards %d and %d", c, compShard[c], i)
			}
			compShard[c] = int32(i)
		}
	}
	for c, s := range compShard {
		if s == -1 {
			return nil, fmt.Errorf("core: component %d owned by no shard", c)
		}
	}
	return &ShardedEngine{
		shards:    shards,
		compShard: compShard,
		touched:   make([]atomic.Uint64, len(shards)),
		rounds:    make([]atomic.Uint64, len(shards)),
	}, nil
}

// NumShards returns the shard count.
func (se *ShardedEngine) NumShards() int { return len(se.shards) }

// Shard returns the i-th per-shard engine.
func (se *ShardedEngine) Shard(i int) *Engine { return se.shards[i] }

// CountTouch increments shard i's fan-out counter. Callers that
// short-circuit a one-shard set around Search use it to keep
// ShardTouches the single source of truth.
func (se *ShardedEngine) CountTouch(i int) { se.touched[i].Add(1) }

// CountRounds adds to shard i's round-work counter (see CountTouch).
func (se *ShardedEngine) CountRounds(i int, n uint64) { se.rounds[i].Add(n) }

// WarmProximity pre-explores a seeker's neighbourhood into the cache over
// the shard set's shared substrate; see Engine.WarmProximity. Warming goes
// through shard 0's engine because sharded searches run their iterator
// over shard 0's projection — the cached checkpoints must be bound to the
// same instance pointer the searches will resume them on.
func (se *ShardedEngine) WarmProximity(pc *proxcache.Cache, seeker graph.NID, params score.Params, maxDepth int) (depth int, seeded bool) {
	return se.shards[0].WarmProximity(pc, seeker, params, maxDepth)
}

// ShardTouches returns, per shard, how many searches fanned out to it
// (had at least one matching component there) over the engine's lifetime.
func (se *ShardedEngine) ShardTouches() []uint64 {
	out := make([]uint64, len(se.touched))
	for i := range se.touched {
		out[i] = se.touched[i].Load()
	}
	return out
}

// ShardRounds returns, per shard, how many lockstep rounds carried
// candidate work on it over the engine's lifetime — the per-shard work
// signal behind /stats and rebalancing.
func (se *ShardedEngine) ShardRounds() []uint64 {
	out := make([]uint64, len(se.rounds))
	for i := range se.rounds {
		out[i] = se.rounds[i].Load()
	}
	return out
}

// Search runs a sharded S3k search. The answer — result set, order and
// score intervals — is identical to Engine.Search over the unpartitioned
// instance; see the package comment for why.
func (se *ShardedEngine) Search(seeker graph.NID, keywords []string, opts Options) ([]Result, Stats, error) {
	start := time.Now()
	var stats Stats
	if opts.K <= 0 {
		return nil, stats, fmt.Errorf("core: k must be positive, got %d", opts.K)
	}
	in := se.shards[0].in
	if int(seeker) < 0 || int(seeker) >= in.NumNodes() || in.KindOf(seeker) != graph.KindUser {
		return nil, stats, fmt.Errorf("core: seeker must be a user node")
	}
	eps := opts.Epsilon
	if eps == 0 {
		eps = 1e-12
	}

	// The dictionary and saturated ontology are shared substrate, so any
	// shard resolves the query's keyword groups identically.
	root := opts.Trace.Span()
	resolve := root.StartChild("resolve")
	groups, possible, err := se.shards[0].KeywordGroups(keywords)
	if err != nil {
		return nil, stats, err
	}
	resolve.End()
	if !possible {
		stats.Reason = StopNoMatch
		stats.Elapsed = time.Since(start)
		return nil, stats, nil
	}
	spec := SearchSpec{Seeker: seeker, Groups: groups, K: opts.K, Params: opts.Params, Epsilon: eps}

	// One iterator serves every shard of the process: it runs over shard
	// 0's projection, and projections share the substrate (node numbering
	// and matrix), so its checkpoints serve every fan-out of this shard
	// set. Cache wiring matches the single engine: resume from the deepest
	// cached frontier, publish the final one back when the search deepened
	// it.
	it, ckey, resumedN := openIterator(in, seeker, opts)
	drv := newRoundDriver(it).withRouting(in, se.compShard, len(se.shards))
	execs := make([]ShardExecutor, len(se.shards))
	for i, e := range se.shards {
		execs[i] = &LocalExecutor{
			e:       e,
			workers: opts.Workers,
			drv:     drv,
			shard:   i,
			touched: &se.touched[i],
			rounds:  &se.rounds[i],
			traced:  opts.Trace != nil,
		}
	}

	sel, stats, err := Coordinate(execs, spec, CoordOptions{
		MaxIterations: opts.MaxIterations,
		Budget:        opts.Budget,
		Start:         start,
		Trace:         opts.Trace,
		Obs:           opts.Obs,
	})
	if err != nil {
		return nil, stats, err
	}
	stats.ResumedDepth = resumedN
	root.SetInt("resumed_depth", int64(resumedN))
	if opts.ProxCache != nil && it.RecordedDepth() > resumedN {
		opts.ProxCache.Put(ckey, it.Checkpoint())
	}
	out := make([]Result, 0, len(sel))
	for _, c := range sel {
		out = append(out, Result{Doc: c.Doc, URI: in.URIOf(c.Doc), Lower: c.Lower, Upper: c.Upper})
	}
	return out, stats, nil
}

// fanoutThreshold is the amount of per-round work (candidates to bound,
// with fresh discoveries weighted heavily) below which fanning out across
// goroutines costs more than it saves: small queries run the shards
// serially, candidate-heavy ones in parallel.
const fanoutThreshold = 192
