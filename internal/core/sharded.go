// Sharded S3k: the fan-out/merge engine over a component-partitioned
// instance.
//
// Components (§5.2) are independent for candidate generation — every
// connection of a candidate document lives in the candidate's own
// component — which makes them the natural unit of horizontal
// partitioning. Social proximity, by contrast, is defined over the whole
// network graph (§3.4 sums *all* paths, including paths through other
// shards' document and tag nodes), so every shard shares one proximity
// substrate: the shards of a ShardedEngine are projections of a single
// base instance, with identical node numbering, transition matrix and
// ontology, differing only in which components' index slices they own.
//
// A sharded search therefore runs ONE border-proximity iterator and, each
// round, fans the per-shard work out in parallel: admitting newly
// discovered components, refreshing candidate score intervals and
// computing the shard-local greedy selection. The per-shard selections
// are then merged by score interval (topks.MergeTopK) and the global stop
// condition of Algorithm 2 is evaluated on the merged state. Because
// vertical neighbours always share a component (and hence a shard), the
// merged selection, its certainty and the dominating-bound test decompose
// exactly — the sharded answer is byte-identical to the single-engine
// answer, score intervals included (property-tested in sharded_test.go).
// The only non-deterministic stop is the wall-clock budget, which is
// any-time in the single engine too.
package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"s3/internal/dict"
	"s3/internal/graph"
	"s3/internal/proxcache"
	"s3/internal/score"
	"s3/internal/topks"
)

// ShardedEngine answers queries over a component-partitioned instance by
// fanning each search out across per-shard engines and merging the
// per-shard answers. It is immutable (counters aside) and safe for
// concurrent Search calls.
type ShardedEngine struct {
	shards []*Engine
	// compShard maps a component id to the shard owning it.
	compShard []int32
	// touched counts, per shard, the searches for which the shard had at
	// least one matching component (the fan-out actually reached it).
	touched []atomic.Uint64
}

// NewShardedEngine assembles a sharded engine from per-shard engines.
// Every shard must be built over a projection of the same base instance
// (identical node numbering), and together the shards must own every
// component exactly once. A single unprojected engine forms a valid
// one-shard set.
func NewShardedEngine(shards []*Engine) (*ShardedEngine, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("core: sharded engine needs at least one shard")
	}
	base := shards[0].in
	nComp := base.NumComponents()
	compShard := make([]int32, nComp)
	for i := range compShard {
		compShard[i] = -1
	}
	for i, e := range shards {
		if e == nil {
			return nil, fmt.Errorf("core: shard %d is nil", i)
		}
		if e.in.NumNodes() != base.NumNodes() || e.in.NumComponents() != nComp {
			return nil, fmt.Errorf("core: shard %d is not a projection of the same instance", i)
		}
		owned := e.in.OwnedComponents()
		if owned == nil {
			// An unprojected instance owns everything; that is only
			// consistent when it is the sole shard.
			if len(shards) != 1 {
				return nil, fmt.Errorf("core: shard %d is unprojected in a %d-shard set", i, len(shards))
			}
			for c := range compShard {
				compShard[c] = 0
			}
			break
		}
		for _, c := range owned {
			if compShard[c] != -1 {
				return nil, fmt.Errorf("core: component %d owned by shards %d and %d", c, compShard[c], i)
			}
			compShard[c] = int32(i)
		}
	}
	for c, s := range compShard {
		if s == -1 {
			return nil, fmt.Errorf("core: component %d owned by no shard", c)
		}
	}
	return &ShardedEngine{
		shards:    shards,
		compShard: compShard,
		touched:   make([]atomic.Uint64, len(shards)),
	}, nil
}

// NumShards returns the shard count.
func (se *ShardedEngine) NumShards() int { return len(se.shards) }

// Shard returns the i-th per-shard engine.
func (se *ShardedEngine) Shard(i int) *Engine { return se.shards[i] }

// CountTouch increments shard i's fan-out counter. Callers that
// short-circuit a one-shard set around Search use it to keep
// ShardTouches the single source of truth.
func (se *ShardedEngine) CountTouch(i int) { se.touched[i].Add(1) }

// WarmProximity pre-explores a seeker's neighbourhood into the cache over
// the shard set's shared substrate; see Engine.WarmProximity. Warming goes
// through shard 0's engine because sharded searches run their iterator
// over shard 0's projection — the cached checkpoints must be bound to the
// same instance pointer the searches will resume them on.
func (se *ShardedEngine) WarmProximity(pc *proxcache.Cache, seeker graph.NID, params score.Params, maxDepth int) (depth int, seeded bool) {
	return se.shards[0].WarmProximity(pc, seeker, params, maxDepth)
}

// ShardTouches returns, per shard, how many searches fanned out to it
// (had at least one matching component there) over the engine's lifetime.
func (se *ShardedEngine) ShardTouches() []uint64 {
	out := make([]uint64, len(se.touched))
	for i := range se.touched {
		out[i] = se.touched[i].Load()
	}
	return out
}

// Search runs a sharded S3k search. The answer — result set, order and
// score intervals — is identical to Engine.Search over the unpartitioned
// instance; see the package comment for why.
func (se *ShardedEngine) Search(seeker graph.NID, keywords []string, opts Options) ([]Result, Stats, error) {
	start := time.Now()
	var stats Stats
	if opts.K <= 0 {
		return nil, stats, fmt.Errorf("core: k must be positive, got %d", opts.K)
	}
	in := se.shards[0].in
	if int(seeker) < 0 || int(seeker) >= in.NumNodes() || in.KindOf(seeker) != graph.KindUser {
		return nil, stats, fmt.Errorf("core: seeker must be a user node")
	}
	eps := opts.Epsilon
	if eps == 0 {
		eps = 1e-12
	}

	// The dictionary and saturated ontology are shared substrate, so any
	// shard resolves the query's keyword groups identically.
	groups, possible, err := se.shards[0].KeywordGroups(keywords)
	if err != nil {
		return nil, stats, err
	}
	if !possible {
		stats.Reason = StopNoMatch
		stats.Elapsed = time.Since(start)
		return nil, stats, nil
	}

	sts := make([]*shardState, len(se.shards))
	totalMatched := 0
	for i, e := range se.shards {
		sc, err := score.NewScorer(e.in, e.ix, opts.Params, groups)
		if err != nil {
			return nil, stats, err
		}
		matched := make(map[int32]struct{})
		for _, c := range e.ix.CompsForGroups(groups) {
			matched[c] = struct{}{}
		}
		if len(matched) > 0 {
			se.touched[i].Add(1)
		}
		totalMatched += len(matched)
		sts[i] = &shardState{
			e:        e,
			sc:       sc,
			groups:   groups,
			opts:     opts,
			eps:      eps,
			matched:  matched,
			admitted: make(map[int32]struct{}),
		}
	}
	stats.ComponentsMatched = totalMatched
	if totalMatched == 0 {
		stats.Reason = StopNoMatch
		stats.Elapsed = time.Since(start)
		return nil, stats, nil
	}

	threshold := se.thresholdFunc(groups)
	// The iterator runs over shard 0's projection; projections share the
	// substrate (node numbering and matrix), so its checkpoints serve every
	// fan-out of this shard set. Cache wiring matches the single engine:
	// resume from the deepest cached frontier, publish the final one back
	// when the search deepened it.
	it, ckey, resumedN := openIterator(in, seeker, opts)

	finish := func(sel []*cand, reason StopReason) ([]Result, Stats, error) {
		if opts.ProxCache != nil && it.RecordedDepth() > resumedN {
			opts.ProxCache.Put(ckey, it.Checkpoint())
		}
		stats.Reason = reason
		stats.Iterations = it.N()
		for _, ss := range sts {
			stats.Candidates += len(ss.cands)
		}
		stats.Elapsed = time.Since(start)
		out := make([]Result, 0, len(sel))
		for _, c := range sel {
			out = append(out, Result{Doc: c.d, URI: in.URIOf(c.d), Lower: c.lower, Upper: c.upper})
		}
		return out, stats, nil
	}
	// finalize recomputes bounds and the merged selection for the
	// non-threshold stops (mirroring the single-engine paths, which take
	// the greedy prefix even when it is still uncertain).
	finalize := func(tail float64) []*cand {
		prox := it.AllProx()
		se.fanout(sts, func(ss *shardState) {
			ss.computeBounds(tail, prox)
			ss.kept, ss.uncertain = ss.greedySelect()
		})
		sel, _ := mergedSelect(sts, opts.K)
		return sel
	}

	reached := 0
	for {
		if it.Done() {
			return finish(finalize(0), StopExhausted)
		}
		if opts.MaxIterations > 0 && it.N() >= opts.MaxIterations {
			return finish(finalize(it.TailBound()), StopBudget)
		}
		if opts.Budget > 0 && time.Since(start) > opts.Budget {
			return finish(finalize(it.TailBound()), StopBudget)
		}

		discovered := it.Step()
		reached += len(discovered)
		stats.NodesReached = reached
		// Route each newly discovered component to its owning shard; the
		// shard-side admission filters against its matched set.
		for _, nd := range discovered {
			comp := in.CompOf(nd)
			if comp < 0 {
				continue
			}
			sts[se.compShard[comp]].pending = append(sts[se.compShard[comp]].pending, comp)
		}

		tail := it.TailBound()
		prox := it.AllProx()
		se.fanout(sts, func(ss *shardState) {
			ss.admitPending()
			ss.computeBounds(tail, prox)
			ss.kept, ss.uncertain = ss.greedySelect()
		})
		admitted := 0
		for _, ss := range sts {
			admitted += len(ss.admitted)
		}
		stats.ComponentsReached = admitted

		thr := 0.0
		if admitted < totalMatched {
			thr = threshold(it.SourceTailBound())
		}
		selection, certain := mergedSelect(sts, opts.K)

		mayGrow := len(selection) < opts.K && thr > eps
		if certain && !mayGrow {
			if len(selection) > 0 {
				minLower := math.Inf(1)
				for _, c := range selection {
					minLower = math.Min(minLower, c.lower)
				}
				maxOther := se.mergedMaxOther(sts, selection)
				if maxOther <= minLower+eps && thr <= minLower+eps {
					return finish(selection, StopThreshold)
				}
			} else if thr <= eps {
				return finish(selection, StopThreshold)
			}
		}

		// Finite-precision tie breaking (Theorem 4.2), as in the single
		// engine: reachable every iteration so disconnected matched
		// components cannot spin the search forever.
		if it.TailBound() < 1e-15 {
			return finish(finalize(it.TailBound()), StopPrecision)
		}
	}
}

// thresholdFunc builds Bscore over the whole shard set: per query
// keyword, the per-component event-count bound is the maximum across
// shards — exactly the bound the unsharded index computes, since the
// shards partition its components.
func (se *ShardedEngine) thresholdFunc(groups [][]dict.ID) func(B float64) float64 {
	masses := make([]int, len(groups))
	for gi, group := range groups {
		for _, k := range group {
			m := 0
			for _, e := range se.shards {
				if v := e.ix.MaxCompEvents(k); v > m {
					m = v
				}
			}
			masses[gi] += m
		}
	}
	return func(B float64) float64 {
		t := 1.0
		for _, mass := range masses {
			t *= float64(mass) * B
		}
		return t
	}
}

// fanoutThreshold is the amount of per-round work (candidates to bound,
// with admissions weighted heavily) below which fanning out across
// goroutines costs more than it saves: small queries run the shards
// serially, candidate-heavy ones in parallel.
const fanoutThreshold = 192

// fanout runs f over every shard with work — in parallel when the round
// carries enough work to amortise the goroutine round-trip, serially
// otherwise. The caller must not touch shard state until fanout returns.
func (se *ShardedEngine) fanout(sts []*shardState, f func(*shardState)) {
	active := sts[:0:0]
	work := 0
	for _, ss := range sts {
		if len(ss.cands) > 0 || len(ss.pending) > 0 {
			active = append(active, ss)
			work += len(ss.cands) + 64*len(ss.pending)
		} else {
			// Nothing to admit or bound: the shard's round outputs are
			// trivially empty.
			ss.kept, ss.uncertain = nil, nil
		}
	}
	if len(active) == 1 || work < fanoutThreshold || runtime.GOMAXPROCS(0) == 1 {
		for _, ss := range active {
			f(ss)
		}
		return
	}
	var wg sync.WaitGroup
	for _, ss := range active {
		wg.Add(1)
		go func(ss *shardState) {
			defer wg.Done()
			f(ss)
		}(ss)
	}
	wg.Wait()
}

// admitPending admits the components routed to this shard in the current
// round, in discovery order, filtering against the matched set and
// deduplicating repeats.
func (ss *shardState) admitPending() {
	for _, comp := range ss.pending {
		if _, ok := ss.matched[comp]; !ok {
			continue
		}
		if _, dup := ss.admitted[comp]; dup {
			continue
		}
		ss.admitted[comp] = struct{}{}
		ss.admitComponent(comp)
	}
	ss.pending = ss.pending[:0]
}

// mergedSelect combines the shard-local greedy selections into the global
// one. The per-shard kept lists are merged by score interval; the walk
// consumes merged candidates until k are selected or the earliest
// shard-local uncertainty point is reached — exactly where the
// single-engine walk over the union of candidates would stop, because
// vertical-neighbour interactions never cross shards.
func mergedSelect(sts []*shardState, k int) ([]*cand, bool) {
	lists := make([][]*cand, 0, len(sts))
	var uncertain *cand
	for _, ss := range sts {
		if len(ss.kept) > 0 {
			lists = append(lists, ss.kept)
		}
		if ss.uncertain != nil && (uncertain == nil || candBefore(ss.uncertain, uncertain)) {
			uncertain = ss.uncertain
		}
	}
	merged := topks.MergeTopK(k, lists, candBefore)
	if uncertain == nil {
		return merged, true
	}
	for i, c := range merged {
		if !candBefore(c, uncertain) {
			// The single-engine walk would reach the uncertain candidate
			// before selecting c: the selection stops here, untrusted.
			return merged[:i], false
		}
	}
	if len(merged) == k {
		// k certain selections precede every uncertainty point.
		return merged, true
	}
	return merged, false
}

// mergedMaxOther computes the §4 dominating bound over the whole
// candidate set: the best upper bound among candidates that are neither
// in the merged selection nor certainly dominated by a selected vertical
// neighbour. Per shard it is maxOtherUpper against the shard-local kept
// list; kept candidates the merge did not consume are "others" globally
// and are folded in here (their local domination check is conservative
// but value-preserving: a locally dominating candidate outside the
// selection contributes an upper bound at least as large as anything it
// dominates).
func (se *ShardedEngine) mergedMaxOther(sts []*shardState, sel []*cand) float64 {
	inSel := make(map[*cand]struct{}, len(sel))
	for _, c := range sel {
		inSel[c] = struct{}{}
	}
	var mu sync.Mutex
	maxOther := 0.0
	se.fanout(sts, func(ss *shardState) {
		local := ss.maxOtherUpper(ss.kept)
		for _, c := range ss.kept {
			if _, ok := inSel[c]; !ok && c.upper > local {
				local = c.upper
			}
		}
		mu.Lock()
		if local > maxOther {
			maxOther = local
		}
		mu.Unlock()
	})
	return maxOther
}
