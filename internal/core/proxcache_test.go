package core

import (
	"fmt"
	"testing"

	"s3/internal/datagen"
	"s3/internal/graph"
	"s3/internal/index"
	"s3/internal/proxcache"
	"s3/internal/score"
	"s3/internal/text"
)

// TestCachedSearchEqualsUncached is the cached-path correctness property:
// with a shared proximity cache enabled — including cross-query checkpoint
// reuse between queries of the same seeker, cold and warm passes, and
// depth-capped any-time stops — Engine.Search and ShardedEngine.Search for
// N ∈ {1, 2, 4} must return byte-identical answers (documents, order,
// score-interval float bits) and statistics to the uncached single engine.
func TestCachedSearchEqualsUncached(t *testing.T) {
	type dataset struct {
		name string
		spec graph.Spec
	}
	var datasets []dataset
	for _, seed := range []int64{1, 42} {
		o := datagen.DefaultTwitterOptions()
		o.Users, o.Tweets, o.Seed = 60, 240, seed
		spec, _ := datagen.Twitter(o)
		datasets = append(datasets, dataset{fmt.Sprintf("twitter/seed=%d", seed), spec})
	}
	{
		o := datagen.DefaultYelpOptions()
		o.Users, o.Businesses = 50, 30
		datasets = append(datasets, dataset{"yelp", datagen.Yelp(o)})
	}

	for _, ds := range datasets {
		t.Run(ds.name, func(t *testing.T) {
			in, err := graph.BuildSpec(ds.spec, text.Analyzer{Lang: text.None})
			if err != nil {
				t.Fatal(err)
			}
			ix := index.Build(in)
			single := NewEngine(in, ix)
			seekers, kwSets := queries(in)
			optsList := []Options{
				{K: 5, Params: score.Params{Gamma: 1.5, Eta: 0.8}},
				{K: 2, Params: score.Params{Gamma: 2, Eta: 0.5}},
				{K: 5, Params: score.Params{Gamma: 1.5, Eta: 0.8}, MaxIterations: 3},
			}

			// Uncached single-engine reference transcripts.
			type queryID struct {
				seeker graph.NID
				kws    int
				opt    int
			}
			want := make(map[queryID]string)
			for _, seeker := range seekers {
				for ki, kws := range kwSets {
					for oi, opts := range optsList {
						rs, stats, err := single.Search(seeker, kws, opts)
						if err != nil {
							t.Fatal(err)
						}
						want[queryID{seeker, ki, oi}] = transcript(rs, stats)
					}
				}
			}

			check := func(label string, search func(graph.NID, []string, Options) ([]Result, Stats, error)) {
				t.Helper()
				// One cache shared by the whole battery: queries of the same
				// seeker deepen and reuse each other's checkpoints, and the
				// second pass runs fully warm.
				pc := proxcache.New(64 << 20)
				for pass := 0; pass < 2; pass++ {
					for _, seeker := range seekers {
						for ki, kws := range kwSets {
							for oi, opts := range optsList {
								opts.ProxCache = pc
								rs, stats, err := search(seeker, kws, opts)
								if err != nil {
									t.Fatal(err)
								}
								got := transcript(rs, stats)
								if got != want[queryID{seeker, ki, oi}] {
									t.Fatalf("%s pass=%d seeker=%s kws=%v opt=%d:\nuncached:\n%s\ncached:\n%s",
										label, pass, in.URIOf(seeker), kws, oi,
										want[queryID{seeker, ki, oi}], got)
								}
							}
						}
					}
				}
				st := pc.Stats()
				if st.Hits == 0 || st.Stores == 0 {
					t.Fatalf("%s: cache never exercised (hits=%d stores=%d)", label, st.Hits, st.Stores)
				}
			}

			check("single", single.Search)
			for _, n := range []int{1, 2, 4} {
				se := buildSharded(t, in, ix, n)
				check(fmt.Sprintf("sharded/n=%d", n), se.Search)
			}
		})
	}
}

// TestWarmProximitySeedsSearch: an explicitly warmed cache serves the next
// search (cache hit), deepens monotonically, and leaves answers
// byte-identical.
func TestWarmProximitySeedsSearch(t *testing.T) {
	o := datagen.DefaultTwitterOptions()
	o.Users, o.Tweets, o.Seed = 60, 240, 7
	spec, _ := datagen.Twitter(o)
	in, err := graph.BuildSpec(spec, text.Analyzer{Lang: text.None})
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(in)
	eng := NewEngine(in, ix)
	seekers, kwSets := queries(in)
	seeker, kws := seekers[0], kwSets[0]
	params := score.DefaultParams()
	opts := Options{K: 5, Params: params}

	want, wantStats, err := eng.Search(seeker, kws, opts)
	if err != nil {
		t.Fatal(err)
	}

	pc := proxcache.New(64 << 20)
	if d, seeded := eng.WarmProximity(pc, seeker, params, 4); d != 4 || !seeded {
		t.Fatalf("WarmProximity = (%d, %v), want (4, true)", d, seeded)
	}
	// Warming again shallower is a no-op that reports the covered depth.
	if d, seeded := eng.WarmProximity(pc, seeker, params, 2); d != 4 || seeded {
		t.Fatalf("re-warm = (%d, %v), want (4, false)", d, seeded)
	}
	if d, seeded := eng.WarmProximity(pc, seeker, params, 6); d != 6 || !seeded {
		t.Fatalf("deepen = (%d, %v), want (6, true)", d, seeded)
	}
	// Non-user and nil-cache warms are rejected.
	if d, seeded := eng.WarmProximity(pc, graph.NID(in.NumNodes()), params, 3); d != 0 || seeded {
		t.Fatalf("out-of-range seeker warmed to (%d, %v)", d, seeded)
	}
	if d, seeded := eng.WarmProximity(nil, seeker, params, 3); d != 0 || seeded {
		t.Fatalf("nil cache warmed to (%d, %v)", d, seeded)
	}

	opts.ProxCache = pc
	got, gotStats, err := eng.Search(seeker, kws, opts)
	if err != nil {
		t.Fatal(err)
	}
	if transcript(got, gotStats) != transcript(want, wantStats) {
		t.Fatalf("warmed search diverged:\nuncached:\n%s\nwarmed:\n%s",
			transcript(want, wantStats), transcript(got, gotStats))
	}
	if st := pc.Stats(); st.Hits == 0 {
		t.Fatalf("warmed search did not hit the cache: %+v", st)
	}
}
