package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"s3/internal/datagen"
	"s3/internal/doc"
	"s3/internal/graph"
	"s3/internal/index"
	"s3/internal/score"
	"s3/internal/text"
)

func buildRandomEngine(t *testing.T, seed int64) *Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	spec := datagen.RandomSpec(rng, datagen.DefaultRandomOptions())
	in, err := graph.BuildSpec(spec, text.Analyzer{Lang: text.None})
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(in, index.Build(in))
}

// The central correctness property: S3k returns the same answer as the
// exhaustive oracle, across random instances, seekers, queries and k.
// Mismatches are tolerated only for exact score ties at the answer
// boundary (the paper notes answers need not be unique then).
func TestS3kMatchesExhaustive(t *testing.T) {
	params := score.Params{Gamma: 1.5, Eta: 0.6}
	queries := [][]string{{"kw0"}, {"kw1"}, {"kw0", "kw1"}, {"kw2", "kw3"}}
	for seed := int64(0); seed < 60; seed++ {
		e := buildRandomEngine(t, seed)
		users := e.Instance().Users()
		seeker := users[int(seed)%len(users)]
		query := queries[int(seed)%len(queries)]
		for _, k := range []int{1, 3, 5} {
			got, stats, err := e.Search(seeker, query, Options{K: k, Params: params})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			want, err := e.Exhaustive(seeker, query, k, params)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			compareAnswers(t, e, seeker, query, params, seed, k, got, want, stats)
		}
	}
}

// compareAnswers checks that two answers are equivalent as *sets* — the
// paper's top-k answer is a set (Definition 3.2) and need not be unique
// under exact score ties (Theorem 4.2), so:
//
//   - the answers have the same size;
//   - the sorted exact-score sequences of the two answers agree within
//     float tolerance (ties may swap which document is returned, but never
//     the achieved scores);
//   - each S3k score interval brackets the exact score of its document.
func compareAnswers(t *testing.T, e *Engine, seeker graph.NID, query []string, params score.Params,
	seed int64, k int, got []Result, want []Result, stats Stats) {
	t.Helper()
	if stats.Reason == StopBudget {
		t.Fatalf("seed %d: unexpected any-time stop in exact mode", seed)
	}
	if len(got) == 0 && len(want) == 0 {
		return // e.g. a query keyword absent from the instance
	}
	exact := exactScorer(t, e, seeker, query, params)
	gotScores := make([]float64, len(got))
	for i, r := range got {
		s := exact(r.Doc)
		gotScores[i] = s
		if s < r.Lower-1e-6 || s > r.Upper+1e-6 {
			t.Fatalf("seed %d k=%d: exact score %v of %s outside interval [%v, %v]",
				seed, k, s, r.URI, r.Lower, r.Upper)
		}
	}
	wantScores := make([]float64, len(want))
	for i, r := range want {
		wantScores[i] = r.Lower
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(gotScores)))
	sort.Sort(sort.Reverse(sort.Float64Slice(wantScores)))
	n := min(len(gotScores), len(wantScores))
	for i := 0; i < n; i++ {
		if math.Abs(gotScores[i]-wantScores[i]) > 1e-6 {
			t.Fatalf("seed %d k=%d: score sequences diverge at %d: %v vs %v\ngot %v\nwant %v",
				seed, k, i, gotScores[i], wantScores[i], uris(got), uris(want))
		}
	}
	// The answers may differ in size only by documents of vanishing score:
	// the engine and the oracle place the "score is effectively zero"
	// cutoff at slightly different float magnitudes.
	for _, extra := range append(gotScores[n:], wantScores[n:]...) {
		if extra > 1e-9 {
			t.Fatalf("seed %d k=%d: answers differ by a non-vanishing document (score %v)\ngot %v\nwant %v",
				seed, k, extra, uris(got), uris(want))
		}
	}
}

// exactScorer returns a function computing the exact score of any document
// for the given query, independent of the engine's bounds machinery.
func exactScorer(t *testing.T, e *Engine, seeker graph.NID, query []string, params score.Params) func(graph.NID) float64 {
	t.Helper()
	groups, ok, err := e.KeywordGroups(query)
	if err != nil || !ok {
		t.Fatalf("KeywordGroups(%v): ok=%v err=%v", query, ok, err)
	}
	sc, err := score.NewScorer(e.Instance(), e.Index(), params, groups)
	if err != nil {
		t.Fatal(err)
	}
	prox := score.ExactProximity(e.Instance(), params, seeker, 1e-14)
	return func(d graph.NID) float64 { return sc.Exact(d, prox) }
}

func uris(rs []Result) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.URI
	}
	return out
}

// No two answers may ever be vertical neighbours (Definition 3.2).
func TestAnswersAreVerticalNeighborFree(t *testing.T) {
	params := score.DefaultParams()
	for seed := int64(100); seed < 130; seed++ {
		e := buildRandomEngine(t, seed)
		seeker := e.Instance().Users()[0]
		got, _, err := e.Search(seeker, []string{"kw0"}, Options{K: 5, Params: params})
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			for j := i + 1; j < len(got); j++ {
				if e.Instance().VerticalNeighbors(got[i].Doc, got[j].Doc) {
					t.Fatalf("seed %d: results %s and %s are vertical neighbours",
						seed, got[i].URI, got[j].URI)
				}
			}
		}
	}
}

// The sibling-resurrection scenario that makes naive candidate deletion
// unsound: root R is dominated by its child S1, yet the other child S2 —
// also "dominated" by R — belongs to the top-2 answer because R itself is
// excluded by S1.
func TestSiblingResurrection(t *testing.T) {
	b := graph.NewBuilder(text.Analyzer{Lang: text.None})
	must(t, b.AddUser("seeker"))
	must(t, b.AddUser("friend"))
	must(t, b.AddUser("acq"))
	must(t, b.AddSocial("seeker", "friend", 1, ""))
	must(t, b.AddSocial("seeker", "acq", 0.4, ""))
	root := &doc.Node{URI: "d", Name: "doc", Children: []*doc.Node{
		{Name: "s1"}, {Name: "s2"},
	}}
	must(t, b.AddDocument(root))
	must(t, b.AddPost("d", "friend"))
	// With no containment connections, scores are purely tag-driven:
	// score(d.1) = prox(friend), score(d.2) = prox(acq), and the root
	// scores η·(prox(friend) + prox(acq)) — strictly between its two
	// children for η = 0.5. The top-2 answer must be {d.1, d.2}: the
	// root is excluded by d.1, which "resurrects" the weaker sibling.
	must(t, b.AddTag("a1", "d.1", "friend", "kw", ""))
	must(t, b.AddTag("a2", "d.2", "acq", "kw", ""))
	in, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(in, index.Build(in))
	seeker, _ := in.NIDOf("seeker")

	params := score.Params{Gamma: 1.5, Eta: 0.5}
	got, stats, err := e.Search(seeker, []string{"kw"}, Options{K: 2, Params: params})
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Exhaustive(seeker, []string{"kw"}, 2, params)
	if err != nil {
		t.Fatal(err)
	}
	compareAnswers(t, e, seeker, []string{"kw"}, params, -1, 2, got, want, stats)
	if len(got) != 2 {
		t.Fatalf("expected 2 results, got %v (stats %+v)", uris(got), stats)
	}
	gotSet := map[string]bool{got[0].URI: true, got[1].URI: true}
	if !gotSet["d.1"] || !gotSet["d.2"] {
		t.Fatalf("answer = %v, want {d.1, d.2}", uris(got))
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	params := score.DefaultParams()
	for seed := int64(200); seed < 215; seed++ {
		e := buildRandomEngine(t, seed)
		seeker := e.Instance().Users()[0]
		seq, _, err := e.Search(seeker, []string{"kw0", "kw1"}, Options{K: 4, Params: params, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		par, _, err := e.Search(seeker, []string{"kw0", "kw1"}, Options{K: 4, Params: params, Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) != len(par) {
			t.Fatalf("seed %d: sequential %v vs parallel %v", seed, uris(seq), uris(par))
		}
		for i := range seq {
			if seq[i].Doc != par[i].Doc {
				t.Fatalf("seed %d rank %d: %s vs %s", seed, i, seq[i].URI, par[i].URI)
			}
		}
	}
}

func TestSearchIsDeterministic(t *testing.T) {
	e := buildRandomEngine(t, 300)
	seeker := e.Instance().Users()[0]
	opts := Options{K: 5, Params: score.DefaultParams()}
	a, _, err := e.Search(seeker, []string{"kw0"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := e.Search(seeker, []string{"kw0"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("non-deterministic result size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic rank %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// Any-time termination (Theorem 4.3): the engine returns a usable answer
// under an iteration or time budget and reports StopBudget.
func TestAnytimeTermination(t *testing.T) {
	e := buildRandomEngine(t, 400)
	seeker := e.Instance().Users()[0]

	got, stats, err := e.Search(seeker, []string{"kw0"}, Options{
		K: 3, Params: score.DefaultParams(), MaxIterations: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reason != StopBudget {
		t.Fatalf("reason = %s, want %s", stats.Reason, StopBudget)
	}
	if stats.Iterations > 1 {
		t.Fatalf("iterations = %d, want ≤ 1", stats.Iterations)
	}
	for _, r := range got {
		if r.Upper < r.Lower {
			t.Fatalf("inverted interval in any-time answer: %+v", r)
		}
	}

	_, stats, err = e.Search(seeker, []string{"kw0"}, Options{
		K: 3, Params: score.DefaultParams(), Budget: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reason != StopBudget {
		t.Fatalf("reason = %s, want %s", stats.Reason, StopBudget)
	}
}

func TestUnknownKeywordReturnsNoMatch(t *testing.T) {
	e := buildRandomEngine(t, 500)
	seeker := e.Instance().Users()[0]
	got, stats, err := e.Search(seeker, []string{"neverappears"}, Options{K: 3, Params: score.DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || stats.Reason != StopNoMatch {
		t.Fatalf("got %v, reason %s; want empty/nomatch", uris(got), stats.Reason)
	}
}

func TestSearchValidation(t *testing.T) {
	e := buildRandomEngine(t, 600)
	seeker := e.Instance().Users()[0]
	if _, _, err := e.Search(seeker, []string{"kw0"}, Options{K: 0, Params: score.DefaultParams()}); err == nil {
		t.Fatal("expected error for k = 0")
	}
	if _, _, err := e.Search(seeker, nil, Options{K: 1, Params: score.DefaultParams()}); err == nil {
		t.Fatal("expected error for empty query")
	}
	docNode := e.Instance().DocRoots()[0]
	if _, _, err := e.Search(docNode, []string{"kw0"}, Options{K: 1, Params: score.DefaultParams()}); err == nil {
		t.Fatal("expected error for non-user seeker")
	}
	if _, err := e.Exhaustive(docNode, []string{"kw0"}, 1, score.DefaultParams()); err == nil {
		t.Fatal("expected oracle error for non-user seeker")
	}
}

// A seeker with no outgoing edges reaches nothing; every document scores
// zero and the answer is empty.
func TestIsolatedSeeker(t *testing.T) {
	b := graph.NewBuilder(text.Analyzer{Lang: text.None})
	must(t, b.AddUser("loner"))
	must(t, b.AddUser("author"))
	must(t, b.AddDocument(&doc.Node{URI: "d", Keywords: []string{"kw"}}))
	must(t, b.AddPost("d", "author"))
	in, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(in, index.Build(in))
	seeker, _ := in.NIDOf("loner")
	got, stats, err := e.Search(seeker, []string{"kw"}, Options{K: 3, Params: score.DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("isolated seeker got results: %v (reason %s)", uris(got), stats.Reason)
	}
}

// Semantic extension reaches documents that share no literal keyword with
// the query — the paper's headline qualitative claim (R3).
func TestSemanticExtensionFindsResults(t *testing.T) {
	b := graph.NewBuilder(text.Analyzer{Lang: text.None})
	must(t, b.AddUser("u1"))
	must(t, b.AddUser("u0"))
	must(t, b.AddSocial("u1", "u0", 1, ""))
	b.AddOntologyTriple("ms", "rdfs:subClassOf", "degree")
	must(t, b.AddDocument(&doc.Node{URI: "d1", Keywords: []string{"ms"}}))
	must(t, b.AddPost("d1", "u0"))
	in, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(in, index.Build(in))
	seeker, _ := in.NIDOf("u1")

	// Query "degree": d1 only contains "ms", reachable through Ext.
	got, _, err := e.Search(seeker, []string{"degree"}, Options{K: 1, Params: score.DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].URI != "d1" {
		t.Fatalf("semantic query returned %v, want [d1]", uris(got))
	}
	// Sanity: a keyword with no extension match returns nothing.
	got, _, err = e.Search(seeker, []string{"doctorate"}, Options{K: 1, Params: score.DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("unexpected results %v", uris(got))
	}
}

func TestCandidateCount(t *testing.T) {
	e := buildRandomEngine(t, 700)
	groups, ok, err := e.KeywordGroups([]string{"kw0"})
	if err != nil || !ok {
		t.Fatalf("KeywordGroups: %v ok=%v", err, ok)
	}
	n := e.CandidateCount(groups)
	if n < 0 {
		t.Fatalf("CandidateCount = %d", n)
	}
	// Narrowing the query can only shrink the candidate set.
	groups2, ok, err := e.KeywordGroups([]string{"kw0", "kw1"})
	if err != nil || !ok {
		t.Skip("kw1 missing from this instance")
	}
	if n2 := e.CandidateCount(groups2); n2 > n {
		t.Fatalf("conjunctive candidates %d exceed single-keyword %d", n2, n)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
