// The per-round protocol of sharded search, made explicit.
//
// A sharded S3k search is a sequence of lockstep rounds: advance the
// seeker's proximity exploration one layer, let every shard admit newly
// discovered components, refresh its candidates' score intervals and
// compute its shard-local greedy selection, then merge the per-shard
// selections by score interval (topks.MergeTopK) and evaluate the global
// stop condition of Algorithm 2 on the merged state. PR 2 buried that
// protocol inside ShardedEngine.Search; this file extracts it into an
// explicit ShardExecutor interface with serializable round messages, so
// the same coordinator loop can drive in-process shards (LocalExecutor,
// sharing one proximity iterator) and remote worker processes (each
// advancing its own iterator over the shared substrate — identical
// floating-point operations in identical order, hence byte-identical
// rounds) over any transport.
//
// Everything the coordinator needs from a shard fits in a few dozen bytes
// per round: the shard-local selection is at most k candidates, and the
// global stop decision needs only per-shard aggregates (admitted counts,
// the dominating bound, the iterator's tail bounds). The proximity vector
// itself never crosses the boundary.
package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"s3/internal/dict"
	"s3/internal/graph"
	"s3/internal/obs"
	"s3/internal/score"
	"s3/internal/topks"
)

// SearchSpec describes one sharded search to an executor. All fields are
// plain values, resolved against the shared substrate by the coordinator
// (keyword groups are dictionary ids, identical in every process mapping
// the same manifest), so the spec serializes verbatim.
type SearchSpec struct {
	// Seeker is the querying user node.
	Seeker graph.NID
	// Groups are the resolved keyword groups: Groups[i] is the semantic
	// extension of the i-th query keyword (Definition 2.1).
	Groups [][]dict.ID
	// K is the number of results.
	K int
	// Params are the damping factors (γ, η).
	Params score.Params
	// Epsilon is the finite-precision tie-breaking margin (resolved by the
	// coordinator; never zero).
	Epsilon float64
}

// CandMeta is the serializable summary of one candidate: everything the
// cross-shard merge and the stop decision read. The canonical order over
// CandMeta (upper bound descending, ties by node id) equals the engine's
// candidate order, which is what keeps merged selections byte-identical
// to single-engine ones.
type CandMeta struct {
	Doc          graph.NID
	Lower, Upper float64
}

// metaBefore is candBefore over candidate summaries.
func metaBefore(a, b CandMeta) bool {
	if a.Upper != b.Upper {
		return a.Upper > b.Upper
	}
	return a.Doc < b.Doc
}

// BeginInfo is a shard's response to Begin: what the coordinator needs to
// size the search and build the global threshold.
type BeginInfo struct {
	// Matched is the number of this shard's components matching every
	// query keyword.
	Matched int
	// GroupMasses[gi][j] is MaxCompEvents of Groups[gi][j] in this shard's
	// index slice. The coordinator takes the element-wise maximum across
	// shards — exactly the bound the unsharded index computes, since the
	// shards partition its components.
	GroupMasses [][]int32
}

// RoundInfo is a shard's response to one lockstep round (or to Finalize):
// the shard-local selection plus the per-shard aggregates of the global
// stop decision.
type RoundInfo struct {
	// Kept is the shard-local greedy selection, best-first (at most k).
	Kept []CandMeta
	// Uncertain is the first candidate whose relative order is still
	// unresolved (nil when the local selection is trustworthy).
	Uncertain *CandMeta
	// MaxOther is the best upper bound among the shard's candidates that
	// are outside Kept and not certainly dominated by a kept neighbour.
	MaxOther float64
	// Admitted and Candidates are cumulative counts for this search.
	Admitted   int
	Candidates int
	// Reached is the cumulative number of nodes discovered by the
	// proximity exploration — identical across shards (they advance the
	// same exploration).
	Reached int
	// N, Tail, SourceTail and Done describe the iterator after this
	// round's step: exploration depth, B>n, the unexplored-component
	// source bound, and whether the reachable graph is exhausted. They are
	// byte-identical across shards; the coordinator cross-checks N and
	// Done to catch divergent replicas.
	N          int
	Tail       float64
	SourceTail float64
	Done       bool
}

// ShardExecutor runs one shard's half of the lockstep round protocol. A
// search is one Begin, any number of Rounds, at most one Finalize, and
// exactly one End (which must be called on every path, including errors).
// Executors are single-search and not safe for concurrent calls, but
// distinct executors may run concurrently — the coordinator scatters each
// round across shards.
type ShardExecutor interface {
	// Begin installs the search and reports the shard's matched
	// components and threshold masses.
	Begin(spec SearchSpec) (BeginInfo, error)
	// Round advances the proximity exploration one layer, admits newly
	// discovered matching components, refreshes candidate bounds at the
	// new tail and recomputes the shard-local selection.
	Round() (RoundInfo, error)
	// Finalize recomputes bounds and the selection at the current tail
	// without advancing the exploration — the non-threshold stops
	// (exhaustion, budget, precision) take the greedy prefix as-is.
	Finalize() (RoundInfo, error)
	// End releases the search's per-shard state.
	End()
}

// CoordOptions configure one coordinated search.
type CoordOptions struct {
	// Ctx, when non-nil, cancels the coordinated search: it is checked
	// before every round, so a disconnected client stops burning shard
	// rounds at the next lockstep boundary (the deferred Ends still run,
	// releasing per-shard sessions).
	Ctx context.Context
	// MaxIterations and Budget are the any-time stop bounds (0 = none).
	MaxIterations int
	Budget        time.Duration
	// Start anchors the budget clock (the caller's search start).
	Start time.Time
	// ForceParallel scatters every round across goroutines regardless of
	// the per-round work estimate — the right choice when executor calls
	// leave the process (network latency dwarfs goroutine overhead).
	ForceParallel bool
	// NoSpeculation withholds the speculative-fetch permission from
	// RoundPlanner executors: rounds are only fetched when the
	// coordinator asks for them. Answers are identical either way.
	NoSpeculation bool
	// Trace, when non-nil, records the coordinated search's stages (begin,
	// each lockstep round with its per-shard fan-out, finalize) as spans
	// under the trace's root. Executors that implement TakeSpan (remote
	// shards, tracing-enabled local ones) contribute their own span
	// subtrees, stitched under the per-shard fan-out spans. Tracing is
	// observational only: it never changes the answer.
	Trace *obs.Trace
	// Obs, when non-nil, receives the search's metrics observations
	// (rounds per search, per-round latency).
	Obs *obs.SearchMetrics
}

// spanSource is implemented by executors that collect a span subtree per
// protocol call (LocalExecutor with tracing enabled, RemoteExecutor for
// worker-side spans decoded off the wire). TakeSpan returns the subtree
// recorded by the most recent call and clears it.
type spanSource interface {
	TakeSpan() *obs.Span
}

// RoundPlanner is implemented by executors whose Round calls cross a
// network: before every scatter the coordinator hints how many lockstep
// rounds the executor may fetch in one exchange (the executor still hands
// back exactly one RoundInfo per Round call, buffering the rest — the
// coordinator replays every per-round stop decision locally either way)
// and whether it may speculatively issue the next exchange before the
// coordinator asks. In-process executors do not implement it; their Round
// calls are already cheap.
type RoundPlanner interface {
	PlanRounds(batch int, speculate bool)
}

// / maxRoundBatch caps the adaptive batch hint: one RTT amortized over up
// to this many quiet rounds.
const maxRoundBatch = 16

// certaintyBatch is the batch hint while only certainty is pending: the
// numeric stop gate already passes but a shard still reports its local
// selection order unresolved. That resolution happens inside the shard
// (interval separation against neighbours the coordinator never sees),
// so no extrapolation is possible — a moderate fixed batch bounds both
// the RTT count and the worst-case overshoot.
const certaintyBatch = 8

// / rpcScatter runs one scatter under an optional parent span: each
// executor gets a pre-created child span (created serially, ended inside
// its own closure, so no goroutine ever touches a sibling's), and any
// span subtree the executor collected is attached after the barrier.
func rpcScatter(parent *obs.Span, execs []ShardExecutor, parallel bool, f func(i int) error) error {
	if parent == nil {
		return scatter(execs, parallel, f)
	}
	children := make([]*obs.Span, len(execs))
	for i := range execs {
		children[i] = parent.StartChild("shard")
		children[i].SetInt("shard", int64(i))
	}
	err := scatter(execs, parallel, func(i int) error {
		ferr := f(i)
		children[i].End()
		return ferr
	})
	for i, ex := range execs {
		if src, ok := ex.(spanSource); ok {
			children[i].Attach(src.TakeSpan())
		}
	}
	return err
}

// Coordinate drives a sharded search over the executors: the scatter /
// gather half of the round protocol, plus the merge and the global stop
// decision. It returns the merged selection (best-first) and the search
// stats; the caller resolves URIs and owns the executors' surrounding
// state (iterator checkpoints, counters).
//
// The answer — documents, order and score intervals — is byte-identical
// to Engine.Search over the unpartitioned instance for any conforming
// executor set; see the package comment of sharded.go for why the merge
// decomposes exactly.
func Coordinate(execs []ShardExecutor, spec SearchSpec, copts CoordOptions) ([]CandMeta, Stats, error) {
	var stats Stats
	start := copts.Start
	if start.IsZero() {
		start = time.Now()
	}
	root := copts.Trace.Span()
	defer func() {
		for _, ex := range execs {
			ex.End()
		}
	}()

	beginSpan := root.StartChild("begin")
	begins := make([]BeginInfo, len(execs))
	if err := rpcScatter(beginSpan, execs, true, func(i int) error {
		var err error
		begins[i], err = execs[i].Begin(spec)
		return err
	}); err != nil {
		return nil, stats, err
	}
	beginSpan.End()
	totalMatched := 0
	for _, b := range begins {
		totalMatched += b.Matched
	}
	stats.ComponentsMatched = totalMatched
	if totalMatched == 0 {
		stats.Reason = StopNoMatch
		stats.Elapsed = time.Since(start)
		root.SetAttr("stop", string(StopNoMatch))
		return nil, stats, nil
	}
	threshold, err := thresholdFromMasses(spec.Groups, begins)
	if err != nil {
		return nil, stats, err
	}

	infos := make([]RoundInfo, len(execs))
	merge := newMergeScratch(len(execs))
	finish := func(sel []CandMeta, reason StopReason) ([]CandMeta, Stats, error) {
		stats.Reason = reason
		stats.Candidates = 0
		for _, info := range infos {
			stats.Candidates += info.Candidates
		}
		stats.Elapsed = time.Since(start)
		if root != nil {
			root.SetInt("rounds", int64(stats.Iterations))
			root.SetAttr("stop", string(reason))
		}
		if copts.Obs != nil {
			copts.Obs.Rounds.Observe(float64(stats.Iterations))
		}
		return sel, stats, nil
	}
	finalize := func() ([]CandMeta, error) {
		fin := root.StartChild("finalize")
		if err := rpcScatter(fin, execs, copts.ForceParallel, func(i int) error {
			var err error
			infos[i], err = execs[i].Finalize()
			return err
		}); err != nil {
			return nil, err
		}
		sel, _ := merge.mergedSelect(infos, spec.K)
		fin.End()
		return sel, nil
	}

	var planners []RoundPlanner
	for _, ex := range execs {
		if p, ok := ex.(RoundPlanner); ok {
			planners = append(planners, p)
		}
	}
	// Speculation (issuing the next exchange before this one is consumed)
	// and multi-round batches are only safe when no any-time bound can
	// finalize the search at an earlier tail than the executors reached:
	// a Budget stop can land on any round, so budgeted searches stay in
	// strict per-round lockstep, and MaxIterations caps the batch so the
	// executors never step past the finalize point.
	speculate := !copts.NoSpeculation && copts.Budget <= 0 && copts.MaxIterations <= 0

	n, done := 0, false
	lastWork := 0
	tracedRounds := 0
	batch, ramp := 1, 1
	prevTail := 0.0
	v0, v1 := math.NaN(), math.NaN()
	throttled, cautious := false, false
	for {
		if copts.Ctx != nil {
			if err := copts.Ctx.Err(); err != nil {
				return nil, stats, err
			}
		}
		if done {
			sel, err := finalize()
			if err != nil {
				return nil, stats, err
			}
			return finish(sel, StopExhausted)
		}
		if (copts.MaxIterations > 0 && n >= copts.MaxIterations) ||
			(copts.Budget > 0 && time.Since(start) > copts.Budget) {
			sel, err := finalize()
			if err != nil {
				return nil, stats, err
			}
			return finish(sel, StopBudget)
		}

		if len(planners) > 0 {
			b := batch
			if copts.Budget > 0 {
				b = 1
			}
			if copts.MaxIterations > 0 {
				if rem := copts.MaxIterations - n; rem < b {
					b = rem
				}
			}
			if b < 1 {
				b = 1
			}
			for _, p := range planners {
				p.PlanRounds(b, speculate && !throttled)
			}
		}

		var sp *obs.Span
		if root != nil && tracedRounds < maxTracedRounds {
			sp = root.StartChild("round")
			tracedRounds++
		}
		var roundStart time.Time
		if sp != nil || copts.Obs != nil {
			roundStart = time.Now()
		}

		parallel := copts.ForceParallel || lastWork >= fanoutThreshold
		if err := rpcScatter(sp, execs, parallel, func(i int) error {
			var err error
			infos[i], err = execs[i].Round()
			return err
		}); err != nil {
			return nil, stats, err
		}
		prevReached := stats.NodesReached
		n, done = infos[0].N, infos[0].Done
		admitted := 0
		lastWork = 0
		for i, info := range infos {
			if info.N != n || info.Done != done {
				return nil, stats, fmt.Errorf("core: shard executor %d diverged (round %d/%d, done %v/%v)", i, info.N, n, info.Done, done)
			}
			admitted += info.Admitted
			lastWork += info.Candidates
			if info.Reached > stats.NodesReached {
				stats.NodesReached = info.Reached
			}
		}
		lastWork += 64 * (stats.NodesReached - prevReached)
		stats.Iterations = n
		stats.ComponentsReached = admitted
		tail, sourceTail := infos[0].Tail, infos[0].SourceTail

		thr := 0.0
		if admitted < totalMatched {
			thr = threshold(sourceTail)
		}
		selection, certain := merge.mergedSelect(infos, spec.K)

		// The round span covers the scatter and the merge; the stop
		// decision below is a handful of comparisons.
		if copts.Obs != nil {
			copts.Obs.RoundSeconds.Observe(time.Since(roundStart).Seconds())
		}
		if sp != nil {
			sp.SetInt("n", int64(n))
			sp.SetInt("admitted", int64(admitted))
			sp.SetInt("kept", int64(len(selection)))
			sp.End()
		}

		mayGrow := len(selection) < spec.K && thr > spec.Epsilon
		if certain && !mayGrow {
			if len(selection) > 0 {
				minLower := math.Inf(1)
				for _, c := range selection {
					minLower = math.Min(minLower, c.Lower)
				}
				maxOther := mergedMaxOtherMeta(infos, selection)
				gate := minLower + spec.Epsilon
				if maxOther <= gate && thr <= gate {
					return finish(selection, StopThreshold)
				}
			} else if thr <= spec.Epsilon {
				return finish(selection, StopThreshold)
			}
		}

		// Finite-precision tie breaking (Theorem 4.2), reachable every
		// round so disconnected matched components cannot spin forever.
		if tail < 1e-15 {
			sel, err := finalize()
			if err != nil {
				return nil, stats, err
			}
			return finish(sel, StopPrecision)
		}

		// Adapt the round-batch hint from the stop's observable distance.
		// The numeric stop violation V (how far the dominating bound and
		// the unexplored-component threshold sit above the selection
		// gate) shrinks along the geometrically decaying tail, so two
		// consecutive drops extrapolate to a round count; when V has
		// already closed and only certainty (shard-local interval
		// separation, invisible to the coordinator) is pending, the hint
		// falls back to a moderate batch. While neither signal exists the
		// hint ramps exponentially, and the ramp also bounds the
		// predictor early in a search, when bounds still move too much
		// to extrapolate. Speculation is withheld once the stop is in
		// sight — the demand batch already reaches the predicted stop
		// round, so a speculative fetch behind it could only burn worker
		// CPU past the stop. Overshoot is never a correctness concern
		// (the coordinator replays every buffered round's stop decision
		// regardless), only wasted compute.
		if ramp < maxRoundBatch {
			ramp *= 2
		}
		v := stopViolation(infos, selection, thr, spec)
		est, certPending := estimateStopRounds(v, v1, v0, tail, prevTail)
		v0, v1 = v1, v
		prevTail = tail
		switch {
		case est > 0:
			cautious = cautious || est <= maxRoundBatch
			throttled = cautious
			batch = est
			if batch > ramp {
				batch = ramp
			}
		case certPending:
			throttled, cautious = true, true
			batch = certaintyBatch
			if batch > ramp {
				batch = ramp
			}
		case cautious:
			// The stop was in sight earlier but this round broke the
			// extrapolation (an admission bumped the violation back up).
			// Don't snap back to a full speculative ramp right next to
			// the stop; hold a moderate throttled batch instead.
			throttled = true
			batch = certaintyBatch
			if batch > ramp {
				batch = ramp
			}
		default:
			throttled = false
			batch = ramp
		}
	}
}

// stopViolation measures how far this round's state is from passing the
// threshold stop, as a single scalar: the worst excess of the dominating
// bound and the unexplored-component threshold over the selection gate.
// Zero or negative means the numeric gate passes and only certainty is
// pending. NaN means no selection exists yet (nothing to measure).
func stopViolation(infos []RoundInfo, selection []CandMeta, thr float64, spec SearchSpec) float64 {
	if len(selection) == 0 {
		return math.NaN()
	}
	minLower := math.Inf(1)
	for _, c := range selection {
		minLower = math.Min(minLower, c.Lower)
	}
	gate := minLower + spec.Epsilon
	v := mergedMaxOtherMeta(infos, selection) - gate
	if t := thr - gate; t > v {
		v = t
	}
	return v
}

// estimateStopRounds converts the stop-violation history into a round
// count. The violation's per-round drops shrink roughly geometrically
// (every bound tightens in proportion to the decaying tail), so from two
// consecutive drops d0 = v0-v1 and d1 = v1-v the future drops form a
// geometric series with ratio q = d1/d0; the violation closes after r
// rounds when d1·q·(1-q^r)/(1-q) ≥ v. Returns (r, false) when the
// extrapolation is defined, (0, true) when the numeric gate has already
// passed and only shard-local certainty is pending (not extrapolatable
// from coordinator state), and (0, false) when there is no usable
// history — violation not yet monotonically decreasing, or closing
// slower than geometrically ever reaches. The estimate is always capped
// by the (exact) round count to the tail's 1e-15 precision floor, which
// stops any search regardless. Estimates steer only the round-batch
// hint; answers never depend on them.
func estimateStopRounds(v, v1, v0, tail, prevTail float64) (est int, certPending bool) {
	if math.IsNaN(v) {
		return 0, false
	}
	if v <= 0 {
		return 0, true
	}
	prec := 0
	if prevTail > 0 && tail > 0 && tail < prevTail {
		rho := tail / prevTail
		prec = int(math.Ceil(math.Log(1e-15/tail) / math.Log(rho)))
		if prec < 1 {
			prec = 1
		}
	}
	if math.IsNaN(v0) || math.IsNaN(v1) || v0 <= v1 || v1 <= v {
		return 0, false
	}
	d0, d1 := v0-v1, v1-v
	q := d1 / d0
	r := 0
	if q >= 1 {
		// Drops not shrinking: linear closure or faster.
		r = int(math.Ceil(v / d1))
	} else {
		x := 1 - v*(1-q)/(d1*q)
		if x <= 0 {
			// Geometric decay alone never closes the violation; the
			// precision floor is the only bound in sight.
			r = prec
		} else {
			r = int(math.Ceil(math.Log(x) / math.Log(q)))
		}
	}
	if r < 1 {
		r = 1
	}
	if prec > 0 && r > prec {
		r = prec
	}
	return r, false
}

// scatter runs f(i) for every executor — across goroutines when parallel,
// in order otherwise — and returns the first error.
func scatter(execs []ShardExecutor, parallel bool, f func(i int) error) error {
	if len(execs) == 1 || !parallel || runtime.GOMAXPROCS(0) == 1 {
		var first error
		for i := range execs {
			if err := f(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, len(execs))
	var wg sync.WaitGroup
	for i := range execs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = f(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// thresholdFromMasses builds Bscore over the whole shard set from the
// per-shard Begin responses: per query keyword, the per-component
// event-count bound is the maximum across shards.
func thresholdFromMasses(groups [][]dict.ID, begins []BeginInfo) (func(B float64) float64, error) {
	masses := make([]int, len(groups))
	for gi, group := range groups {
		for j := range group {
			m := int32(0)
			for i, b := range begins {
				if len(b.GroupMasses) != len(groups) || len(b.GroupMasses[gi]) != len(group) {
					return nil, fmt.Errorf("core: shard executor %d returned malformed threshold masses", i)
				}
				if v := b.GroupMasses[gi][j]; v > m {
					m = v
				}
			}
			masses[gi] += int(m)
		}
	}
	return func(B float64) float64 {
		t := 1.0
		for _, mass := range masses {
			t *= float64(mass) * B
		}
		return t
	}, nil
}

// mergeScratch owns one search's merge-path allocations: the per-round
// list headers and the top-k merger are reused round after round, so the
// steady-state round loop performs the merge without touching the heap.
type mergeScratch struct {
	lists  [][]CandMeta
	merger *topks.Merger[CandMeta]
}

func newMergeScratch(n int) *mergeScratch {
	return &mergeScratch{
		lists:  make([][]CandMeta, 0, n),
		merger: topks.NewMerger(metaBefore),
	}
}

// mergedSelect combines the shard-local greedy selections into the
// global one — mergedSelect over wire candidates. The per-shard kept
// lists are merged by score interval; the walk consumes merged candidates
// until k are selected or the earliest shard-local uncertainty point is
// reached, exactly where the single-engine walk over the union would
// stop (vertical-neighbour interactions never cross shards). The
// returned slice shares the scratch's backing: valid until the next
// mergedSelect on the same scratch.
func (m *mergeScratch) mergedSelect(infos []RoundInfo, k int) ([]CandMeta, bool) {
	m.lists = m.lists[:0]
	var uncertain *CandMeta
	for i := range infos {
		if len(infos[i].Kept) > 0 {
			m.lists = append(m.lists, infos[i].Kept)
		}
		if u := infos[i].Uncertain; u != nil && (uncertain == nil || metaBefore(*u, *uncertain)) {
			uncertain = u
		}
	}
	merged := m.merger.Merge(k, m.lists)
	if uncertain == nil {
		return merged, true
	}
	for i, c := range merged {
		if !metaBefore(c, *uncertain) {
			// The single-engine walk would reach the uncertain candidate
			// before selecting c: the selection stops here, untrusted.
			return merged[:i], false
		}
	}
	if len(merged) == k {
		return merged, true
	}
	return merged, false
}

// mergedSelectMeta is mergedSelect over throwaway scratch, for callers
// outside the round loop.
func mergedSelectMeta(infos []RoundInfo, k int) ([]CandMeta, bool) {
	return newMergeScratch(len(infos)).mergedSelect(infos, k)
}

// mergedMaxOtherMeta computes the §4 dominating bound over the whole
// candidate set from the per-shard round responses: each shard's local
// MaxOther, folded with the kept candidates the merge did not consume
// (which are "others" globally). Documents belong to exactly one shard,
// so doc-id membership in the merged selection is exact; sel is at most
// k entries, so the membership check is a linear scan rather than a
// per-round map allocation — and only runs for candidates that would
// actually raise the bound.
func mergedMaxOtherMeta(infos []RoundInfo, sel []CandMeta) float64 {
	maxOther := 0.0
	for i := range infos {
		if infos[i].MaxOther > maxOther {
			maxOther = infos[i].MaxOther
		}
	kept:
		for _, c := range infos[i].Kept {
			if c.Upper <= maxOther {
				continue
			}
			for j := range sel {
				if sel[j].Doc == c.Doc {
					continue kept
				}
			}
			maxOther = c.Upper
		}
	}
	return maxOther
}

// ResolveKeywordGroups resolves raw query keywords to their stemmed
// semantic extensions over an instance's shared substrate (dictionary +
// saturated ontology); see Engine.KeywordGroups. The substrate is
// identical in every process mapping the same snapshot, so a coordinator
// may resolve once and ship dictionary ids to shard executors.
func ResolveKeywordGroups(in *graph.Instance, keywords []string) ([][]dict.ID, bool, error) {
	an := in.Analyzer()
	var groups [][]dict.ID
	for _, kw := range keywords {
		id, ok := in.Dict().Lookup(kw)
		if !ok {
			stems := an.Keywords(kw)
			if len(stems) == 0 {
				continue
			}
			id, ok = in.Dict().Lookup(stems[0])
			if !ok {
				return nil, false, nil
			}
		}
		groups = append(groups, in.Ontology().Ext(id))
	}
	if len(groups) == 0 {
		return nil, false, fmt.Errorf("core: query has no usable keywords")
	}
	return groups, true, nil
}
