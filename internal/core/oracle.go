package core

import (
	"fmt"

	"s3/internal/graph"
	"s3/internal/score"
)

// Exhaustive computes a top-k answer by brute force: near-exact social
// proximity for every node, exact scores for every candidate in every
// matching component, then the greedy selection of Definition 3.2
// (repeatedly take the best-scoring document that is not a vertical
// neighbour of an earlier pick). Documents whose score vanishes (no
// reachable connection source) are not considered answers.
//
// It is the testing oracle for Search and the reference scorer for the
// quality measures of §5.4.
func (e *Engine) Exhaustive(seeker graph.NID, keywords []string, k int, params score.Params) ([]Result, error) {
	if int(seeker) < 0 || int(seeker) >= e.in.NumNodes() || e.in.KindOf(seeker) != graph.KindUser {
		return nil, fmt.Errorf("core: seeker must be a user node")
	}
	prox := score.ExactProximity(e.in, params, seeker, 1e-14)
	return e.TopKWithProximity(keywords, k, params, prox)
}
