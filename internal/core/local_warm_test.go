package core

import (
	"fmt"
	"testing"

	"s3/internal/datagen"
	"s3/internal/graph"
	"s3/internal/index"
	"s3/internal/proxcache"
	"s3/internal/score"
	"s3/internal/text"
)

// TestShardExecutorWarmResume covers the distributed worker's execution
// path: coordinated searches over own-iterator executors with a
// proximity cache must answer byte-identically to cold executors — on
// the first (cache-filling) pass and on the second (frontier-resuming)
// pass — and the second pass must actually hit the cache.
func TestShardExecutorWarmResume(t *testing.T) {
	o := datagen.DefaultTwitterOptions()
	o.Users, o.Tweets, o.Seed = 60, 240, 17
	spec, _ := datagen.Twitter(o)
	in, err := graph.BuildSpec(spec, text.Analyzer{Lang: text.None})
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(in)

	const shards = 2
	parts, err := graph.PartitionComponents(in, shards)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*Engine, shards)
	for i, comps := range parts {
		proj, err := in.ProjectComponents(comps)
		if err != nil {
			t.Fatal(err)
		}
		pix, err := ix.Project(proj)
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = NewEngine(proj, pix)
	}
	// One cache per shard, mirroring one cache per worker process.
	caches := make([]*proxcache.Cache, shards)
	for i := range caches {
		caches[i] = proxcache.New(16 << 20)
	}

	seekers, kwSets := queries(in)
	run := func(warm bool) map[string]string {
		out := make(map[string]string)
		for _, seeker := range seekers {
			for _, kws := range kwSets {
				groups, possible, err := ResolveKeywordGroups(in, kws)
				if err != nil {
					t.Fatal(err)
				}
				if !possible {
					continue
				}
				execs := make([]ShardExecutor, shards)
				for i := range execs {
					le := NewShardExecutor(engines[i], 0)
					if warm {
						le = le.WithProxCache(caches[i])
					}
					execs[i] = le
				}
				sspec := SearchSpec{Seeker: seeker, Groups: groups, K: 5,
					Params: score.Params{Gamma: 1.5, Eta: 0.8}, Epsilon: 1e-12}
				sel, stats, err := Coordinate(execs, sspec, CoordOptions{})
				if err != nil {
					t.Fatal(err)
				}
				rs := make([]Result, len(sel))
				for i, c := range sel {
					rs[i] = Result{Doc: c.Doc, URI: in.URIOf(c.Doc), Lower: c.Lower, Upper: c.Upper}
				}
				out[fmt.Sprintf("%d/%v", seeker, kws)] = transcript(rs, stats)
			}
		}
		return out
	}

	cold := run(false)
	fill := run(true)
	resume := run(true)
	if len(cold) == 0 {
		t.Fatal("no queries produced answers")
	}
	for k, want := range cold {
		if fill[k] != want {
			t.Fatalf("%s: cache-filling pass diverged\ncold:\n%s\nfill:\n%s", k, want, fill[k])
		}
		if resume[k] != want {
			t.Fatalf("%s: frontier-resuming pass diverged\ncold:\n%s\nresume:\n%s", k, want, resume[k])
		}
	}
	stores, hits := uint64(0), uint64(0)
	for _, c := range caches {
		st := c.Stats()
		stores += st.Stores
		hits += st.Hits
	}
	if stores == 0 {
		t.Fatal("first warm pass published no checkpoints")
	}
	if hits == 0 {
		t.Fatal("second warm pass resumed nothing from the cache")
	}
}
