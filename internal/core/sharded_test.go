package core

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"s3/internal/datagen"
	"s3/internal/graph"
	"s3/internal/index"
	"s3/internal/score"
	"s3/internal/text"
)

// buildSharded partitions an instance into n component shards and wires a
// ShardedEngine over the projections.
func buildSharded(t testing.TB, in *graph.Instance, ix *index.Index, n int) *ShardedEngine {
	t.Helper()
	parts, err := graph.PartitionComponents(in, n)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*Engine, n)
	for i, comps := range parts {
		proj, err := in.ProjectComponents(comps)
		if err != nil {
			t.Fatal(err)
		}
		pix, err := ix.Project(proj)
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = NewEngine(proj, pix)
	}
	se, err := NewShardedEngine(engines)
	if err != nil {
		t.Fatal(err)
	}
	return se
}

// transcript renders results and stats so two searches can be compared
// byte for byte (score intervals via their exact float bits).
func transcript(rs []Result, stats Stats) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "reason=%s iter=%d reached=%d matched=%d admitted=%d cands=%d\n",
		stats.Reason, stats.Iterations, stats.NodesReached,
		stats.ComponentsMatched, stats.ComponentsReached, stats.Candidates)
	for _, r := range rs {
		fmt.Fprintf(&b, "%d %s %x %x\n", r.Doc, r.URI, math.Float64bits(r.Lower), math.Float64bits(r.Upper))
	}
	return b.String()
}

// queries picks a battery of rare/mid/common keywords (single and
// conjunctive) for the first few users.
func queries(in *graph.Instance) (seekers []graph.NID, kwSets [][]string) {
	kws := in.SortedKeywordsByFrequency()
	var picks []string
	for _, i := range []int{0, len(kws) / 2, len(kws) - 1} {
		if len(kws) > 0 {
			picks = append(picks, in.Dict().String(kws[i]))
		}
	}
	for _, kw := range picks {
		kwSets = append(kwSets, []string{kw})
	}
	if len(picks) >= 2 {
		kwSets = append(kwSets, []string{picks[1], picks[2]})
	}
	kwSets = append(kwSets, []string{"no-such-keyword-anywhere"})
	users := in.Users()
	for s := 0; s < len(users) && s < 4; s++ {
		seekers = append(seekers, users[s])
	}
	return seekers, kwSets
}

// TestShardedSearchEqualsUnsharded is the answer-equivalence property
// test of the shard-set design: for N ∈ {1, 2, 4, 7}, sharded search must
// return byte-identical results and score intervals (and identical
// exploration statistics) to the single-engine search, across generated
// datasets and query shapes.
func TestShardedSearchEqualsUnsharded(t *testing.T) {
	type dataset struct {
		name string
		spec graph.Spec
	}
	var datasets []dataset
	for _, seed := range []int64{1, 42} {
		o := datagen.DefaultTwitterOptions()
		o.Users, o.Tweets, o.Seed = 60, 240, seed
		spec, _ := datagen.Twitter(o)
		datasets = append(datasets, dataset{fmt.Sprintf("twitter/seed=%d", seed), spec})
	}
	{
		o := datagen.DefaultVodkasterOptions()
		o.Users, o.Movies = 50, 30
		datasets = append(datasets, dataset{"vodkaster", datagen.Vodkaster(o)})
	}
	{
		o := datagen.DefaultYelpOptions()
		o.Users, o.Businesses = 50, 30
		datasets = append(datasets, dataset{"yelp", datagen.Yelp(o)})
	}

	for _, ds := range datasets {
		t.Run(ds.name, func(t *testing.T) {
			in, err := graph.BuildSpec(ds.spec, text.Analyzer{Lang: text.None})
			if err != nil {
				t.Fatal(err)
			}
			ix := index.Build(in)
			single := NewEngine(in, ix)
			seekers, kwSets := queries(in)

			for _, n := range []int{1, 2, 4, 7} {
				se := buildSharded(t, in, ix, n)
				for _, seeker := range seekers {
					for _, kws := range kwSets {
						for _, opts := range []Options{
							{K: 5, Params: score.Params{Gamma: 1.5, Eta: 0.8}},
							{K: 2, Params: score.Params{Gamma: 2, Eta: 0.5}},
							{K: 5, Params: score.Params{Gamma: 1.5, Eta: 0.8}, MaxIterations: 3},
						} {
							want, wantStats, err1 := single.Search(seeker, kws, opts)
							got, gotStats, err2 := se.Search(seeker, kws, opts)
							if (err1 == nil) != (err2 == nil) {
								t.Fatalf("n=%d seeker=%s kws=%v: errors diverge: %v vs %v",
									n, in.URIOf(seeker), kws, err1, err2)
							}
							if err1 != nil {
								continue
							}
							w, g := transcript(want, wantStats), transcript(got, gotStats)
							if w != g {
								t.Fatalf("n=%d seeker=%s kws=%v k=%d:\nunsharded:\n%s\nsharded:\n%s",
									n, in.URIOf(seeker), kws, opts.K, w, g)
							}
						}
					}
				}
			}
		})
	}
}

// TestShardedEngineValidation exercises the shard-set invariants.
func TestShardedEngineValidation(t *testing.T) {
	o := datagen.DefaultTwitterOptions()
	o.Users, o.Tweets, o.Seed = 30, 100, 5
	spec, _ := datagen.Twitter(o)
	in, err := graph.BuildSpec(spec, text.Analyzer{Lang: text.None})
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(in)

	if _, err := NewShardedEngine(nil); err == nil {
		t.Error("empty shard set accepted")
	}
	// An unprojected engine next to another shard owns overlapping
	// components.
	full := NewEngine(in, ix)
	if _, err := NewShardedEngine([]*Engine{full, full}); err == nil {
		t.Error("unprojected multi-shard set accepted")
	}
	// Missing components must be rejected.
	parts, err := graph.PartitionComponents(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := in.ProjectComponents(parts[0])
	if err != nil {
		t.Fatal(err)
	}
	pix, err := ix.Project(proj)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewShardedEngine([]*Engine{NewEngine(proj, pix)}); err == nil {
		t.Error("shard set with unowned components accepted")
	}
	// Overlapping ownership must be rejected.
	if _, err := NewShardedEngine([]*Engine{NewEngine(proj, pix), NewEngine(proj, pix)}); err == nil {
		t.Error("shard set with doubly-owned components accepted")
	}
	// A single unprojected shard is the degenerate valid set.
	se, err := NewShardedEngine([]*Engine{full})
	if err != nil {
		t.Fatalf("single unprojected shard rejected: %v", err)
	}
	if se.NumShards() != 1 {
		t.Errorf("NumShards = %d", se.NumShards())
	}
}
