package core

import (
	"testing"

	"s3/internal/doc"
	"s3/internal/graph"
	"s3/internal/index"
	"s3/internal/score"
	"s3/internal/text"
)

// In the social-blind degenerate mode the best answer for a two-keyword
// query is the lowest common ancestor of the containing nodes — the
// classical XML-IR behaviour §3.4 reduces to when prox ≡ 1.
func TestContentOnlyPrefersLCA(t *testing.T) {
	b := graph.NewBuilder(text.Analyzer{Lang: text.None})
	must(t, b.AddUser("u"))
	// doc: root → sec1( parA("x"), parB("y") ), sec2("z")
	root := &doc.Node{URI: "d", Name: "doc", Children: []*doc.Node{
		{Name: "sec", Children: []*doc.Node{
			{Name: "par", Keywords: []string{"x"}},
			{Name: "par", Keywords: []string{"y"}},
		}},
		{Name: "sec", Keywords: []string{"z"}},
	}}
	must(t, b.AddDocument(root))
	must(t, b.AddPost("d", "u"))
	in, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(in, index.Build(in))
	params := score.Params{Gamma: 1.5, Eta: 0.5}

	res, err := e.SearchContentOnly([]string{"x", "y"}, 1, params)
	if err != nil {
		t.Fatal(err)
	}
	// The LCA of the two keyword nodes is d.1, not the root and not a
	// leaf (leaves lack one keyword; the root pays an extra η).
	if len(res) != 1 || res[0].URI != "d.1" {
		t.Fatalf("content-only answer = %+v, want the LCA d.1", res)
	}

	// Single-keyword query: the containing leaf itself wins (η < 1
	// penalises every ancestor).
	res, err = e.SearchContentOnly([]string{"x"}, 1, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].URI != "d.1.1" {
		t.Fatalf("content-only answer = %+v, want the leaf d.1.1", res)
	}
}

// Best-path proximity never exceeds the all-paths proximity (the sum over
// all paths includes the best one).
func TestBestPathBoundedByAllPaths(t *testing.T) {
	for seed := int64(800); seed < 812; seed++ {
		e := buildRandomEngine(t, seed)
		in := e.Instance()
		params := score.Params{Gamma: 1.5, Eta: 0.5}
		seeker := in.Users()[0]
		all := score.ExactProximity(in, params, seeker, 1e-13)
		best := score.BestPathProximity(in, params, seeker)
		for v := range best {
			if best[v] > all[v]+1e-9 {
				t.Fatalf("seed %d: best-path prox %v exceeds all-paths %v at %s",
					seed, best[v], all[v], in.URIOf(graph.NID(v)))
			}
			if best[v] < 0 {
				t.Fatalf("negative proximity at %v", v)
			}
			// Reachability agreement: a node has a best path iff it has
			// any path.
			if (best[v] == 0) != (all[v] == 0) {
				t.Fatalf("seed %d: reachability mismatch at %s", seed, in.URIOf(graph.NID(v)))
			}
		}
	}
}

func TestTopKWithProximityValidation(t *testing.T) {
	e := buildRandomEngine(t, 820)
	params := score.DefaultParams()
	if _, err := e.TopKWithProximity([]string{"kw0"}, 0, params, make([]float64, e.Instance().NumNodes())); err == nil {
		t.Fatal("expected error for k = 0")
	}
	if _, err := e.TopKWithProximity([]string{"kw0"}, 3, params, make([]float64, 1)); err == nil {
		t.Fatal("expected error for wrong-sized proximity vector")
	}
}

// With the exact proximity vector, TopKWithProximity must agree with
// Exhaustive (it is the same computation, factored differently).
func TestTopKWithProximityMatchesExhaustive(t *testing.T) {
	e := buildRandomEngine(t, 830)
	in := e.Instance()
	params := score.Params{Gamma: 1.5, Eta: 0.6}
	seeker := in.Users()[0]
	prox := score.ExactProximity(in, params, seeker, 1e-14)

	a, err := e.Exhaustive(seeker, []string{"kw0"}, 5, params)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.TopKWithProximity([]string{"kw0"}, 5, params, prox)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Doc != b[i].Doc {
			t.Fatalf("rank %d: %s vs %s", i, a[i].URI, b[i].URI)
		}
	}
}
