// HostExecutor: N co-hosted shard executors behind one shared proximity
// iterator.
//
// A distributed worker process serving several shards of one set used to
// run one own-iterator LocalExecutor per shard, each re-stepping an
// identical exploration over the shared substrate — the compute
// duplication that put cold distributed at a ~2.2-2.5× floor over
// in-process. HostExecutor is the in-process sharing mechanism
// (roundDriver, exactly as ShardedEngine wires it) packaged for a worker:
// one Iterator.Step per round feeds every co-hosted shard's
// admission/bounds/selection, and the per-shard work fans across cores
// when GOMAXPROCS > 1.
//
// The floating-point operations are identical, in identical order, to
// both the in-process sharded engine and the one-shard-per-process
// deployment, so round responses — and the coordinated answer — stay
// byte-identical regardless of how shards are grouped onto hosts.
package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"s3/internal/graph"
	"s3/internal/obs"
	"s3/internal/proxcache"
)

// HostExecutor drives the rounds of one search for a set of co-hosted
// shards off a single shared proximity iterator. Unlike ShardedEngine it
// may host a strict subset of the shard set's components: discoveries
// belonging to shards served elsewhere are routed nowhere.
type HostExecutor struct {
	execs   []*LocalExecutor
	engines []*Engine
	in      *graph.Instance
	// compShard maps component id → hosted executor ordinal, -1 for
	// components owned by shards this host does not serve.
	compShard []int32
	workers   int

	// pc, when non-nil, resumes the shared iterator from the deepest
	// cached frontier at Begin and publishes the deepened frontier at End
	// — ONE cache entry per (seeker, params) for the whole process, not
	// one per hosted shard.
	pc *proxcache.Cache
	// steps, when non-nil, counts actual iterator steps: exactly one per
	// round, however many shards are hosted.
	steps *atomic.Uint64

	drv      *roundDriver
	ckey     proxcache.Key
	resumedN int

	// Per-call scratch, reused round after round so the worker's steady
	// state allocates nothing here. The slices returned by Round, Finalize
	// and TakeSpans are overwritten by the next call of the same kind —
	// callers that keep them must copy.
	infoScratch []RoundInfo
	errScratch  []error
	spanScratch []*obs.Span
}

// NewHostExecutor assembles a host-level executor over the engines of the
// shards one process serves. Every engine must be a projection of the
// same base instance; the hosted shards need not cover the full set. A
// single unprojected engine (whole instance, no slicing) forms a valid
// one-shard host.
func NewHostExecutor(engines []*Engine, workers int) (*HostExecutor, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("core: host executor needs at least one shard engine")
	}
	base := engines[0].in
	nComp := base.NumComponents()
	compShard := make([]int32, nComp)
	for i := range compShard {
		compShard[i] = -1
	}
	for i, e := range engines {
		if e == nil {
			return nil, fmt.Errorf("core: hosted shard %d is nil", i)
		}
		if e.in.NumNodes() != base.NumNodes() || e.in.NumComponents() != nComp {
			return nil, fmt.Errorf("core: hosted shard %d is not a projection of the same instance", i)
		}
		owned := e.in.OwnedComponents()
		if owned == nil {
			// An unprojected instance owns everything; that is only
			// consistent when it is the sole hosted shard.
			if len(engines) != 1 {
				return nil, fmt.Errorf("core: hosted shard %d is unprojected in a %d-shard host", i, len(engines))
			}
			for c := range compShard {
				compShard[c] = 0
			}
			break
		}
		for _, c := range owned {
			if compShard[c] != -1 {
				return nil, fmt.Errorf("core: component %d hosted by shards %d and %d", c, compShard[c], i)
			}
			compShard[c] = int32(i)
		}
	}
	h := &HostExecutor{
		engines:   engines,
		in:        base,
		compShard: compShard,
		workers:   workers,
		execs:     make([]*LocalExecutor, len(engines)),
	}
	for i, e := range engines {
		// Shared-iterator children: the driver is installed at Begin, and
		// shard i reads its own routed discovery list.
		h.execs[i] = &LocalExecutor{e: e, workers: workers, shard: i}
	}
	return h, nil
}

// NumShards returns the number of co-hosted shards.
func (h *HostExecutor) NumShards() int { return len(h.execs) }

// WithProxCache wires the process-wide seeker-proximity checkpoint cache:
// the shared iterator resumes from it at Begin and publishes back at End.
// One budget covers every hosted shard, because there is only one
// exploration to checkpoint.
func (h *HostExecutor) WithProxCache(pc *proxcache.Cache) *HostExecutor {
	h.pc = pc
	return h
}

// WithStepCounter wires a counter incremented once per actual iterator
// step — the /metrics proof that co-hosted shards share one exploration.
func (h *HostExecutor) WithStepCounter(steps *atomic.Uint64) *HostExecutor {
	h.steps = steps
	return h
}

// WithCounters wires per-hosted-shard fan-out and round-work counters
// (either slice may be nil; lengths must match the hosted shard count).
func (h *HostExecutor) WithCounters(touched, rounds []*atomic.Uint64) *HostExecutor {
	for i, x := range h.execs {
		var t, r *atomic.Uint64
		if touched != nil {
			t = touched[i]
		}
		if rounds != nil {
			r = rounds[i]
		}
		x.WithCounters(t, r)
	}
	return h
}

// WithTracing enables per-call span recording on every hosted shard's
// executor; collect with TakeSpans after each protocol call.
func (h *HostExecutor) WithTracing(on bool) *HostExecutor {
	for _, x := range h.execs {
		x.WithTracing(on)
	}
	return h
}

// TakeSpans returns, per hosted shard, the span subtree recorded by the
// most recent protocol call (entries are nil when tracing is off). The
// returned slice is reused by the next TakeSpans call.
func (h *HostExecutor) TakeSpans() []*obs.Span {
	if h.spanScratch == nil {
		h.spanScratch = make([]*obs.Span, len(h.execs))
	}
	out := h.spanScratch
	for i, x := range h.execs {
		out[i] = x.TakeSpan()
	}
	return out
}

// ResumedDepth reports how many exploration rounds the current search's
// shared iterator replayed from a cached checkpoint.
func (h *HostExecutor) ResumedDepth() int { return h.resumedN }

// Begin opens the search on every hosted shard and returns their
// BeginInfos in hosted order. The shared iterator is created (or resumed
// from the process cache) exactly once.
func (h *HostExecutor) Begin(spec SearchSpec) ([]BeginInfo, error) {
	it, ckey, resumedN := openIterator(h.in, spec.Seeker, Options{Params: spec.Params, ProxCache: h.pc})
	drv := newRoundDriver(it).withRouting(h.in, h.compShard, len(h.execs))
	drv.steps = h.steps
	h.drv, h.ckey, h.resumedN = drv, ckey, resumedN
	infos := make([]BeginInfo, len(h.execs))
	for i, x := range h.execs {
		x.drv = drv
		info, err := x.Begin(spec)
		if err != nil {
			h.End()
			return nil, err
		}
		infos[i] = info
	}
	return infos, nil
}

// scratchInfos hands out the reusable per-call RoundInfo slice.
func (h *HostExecutor) scratchInfos() []RoundInfo {
	if h.infoScratch == nil {
		h.infoScratch = make([]RoundInfo, len(h.execs))
	}
	return h.infoScratch
}

// Round advances the search one lockstep round on every hosted shard —
// one iterator step total, per-shard admission/bounds/selection fanned
// across goroutines when more than one core is available. The returned
// slice is scratch, overwritten by the next Round or Finalize.
func (h *HostExecutor) Round() ([]RoundInfo, error) {
	infos := h.scratchInfos()
	if len(h.execs) > 1 && runtime.GOMAXPROCS(0) > 1 {
		if h.errScratch == nil {
			h.errScratch = make([]error, len(h.execs))
		}
		errs := h.errScratch
		var wg sync.WaitGroup
		for i := range h.execs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				infos[i], errs[i] = h.execs[i].Round()
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return infos, nil
	}
	for i, x := range h.execs {
		info, err := x.Round()
		if err != nil {
			return nil, err
		}
		infos[i] = info
	}
	return infos, nil
}

// Finalize re-evaluates every hosted shard's selection at the current
// exploration depth without stepping. The returned slice is scratch,
// overwritten by the next Round or Finalize.
func (h *HostExecutor) Finalize() ([]RoundInfo, error) {
	infos := h.scratchInfos()
	for i, x := range h.execs {
		info, err := x.Finalize()
		if err != nil {
			return nil, err
		}
		infos[i] = info
	}
	return infos, nil
}

// End releases per-shard state and publishes the shared iterator's
// deepened frontier back to the process cache.
func (h *HostExecutor) End() {
	for _, x := range h.execs {
		x.End()
		x.drv = nil
	}
	if h.drv != nil {
		if h.pc != nil {
			if it := h.drv.it; it.RecordedDepth() > h.resumedN {
				h.pc.Put(h.ckey, it.Checkpoint())
			}
		}
		h.drv = nil
	}
	h.resumedN = 0
}
