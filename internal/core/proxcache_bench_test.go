package core

import (
	"testing"

	"s3/internal/datagen"
	"s3/internal/graph"
	"s3/internal/index"
	"s3/internal/proxcache"
	"s3/internal/score"
	"s3/internal/text"
)

// repeatedSeekerInstance builds the seeker-skewed benchmark workload: a
// large social graph (border propagation dominates the per-query cost)
// with a mid-frequency keyword (a real but not enormous candidate set).
func repeatedSeekerInstance(b *testing.B) (*Engine, graph.NID, []string) {
	b.Helper()
	o := datagen.DefaultTwitterOptions()
	o.Users, o.Tweets, o.Seed = 1500, 3000, 42
	spec, _ := datagen.Twitter(o)
	in, err := graph.BuildSpec(spec, text.Analyzer{Lang: text.None})
	if err != nil {
		b.Fatal(err)
	}
	ix := index.Build(in)
	kws := in.SortedKeywordsByFrequency()
	if len(kws) == 0 {
		b.Fatal("no keywords")
	}
	kw := in.Dict().String(kws[len(kws)/2])
	return NewEngine(in, ix), in.Users()[0], []string{kw}
}

// BenchmarkRepeatedSeeker measures the proximity checkpoint cache on its
// target workload — the same seeker querying repeatedly. cold runs every
// search uncached; warm runs every search against a cache holding the
// seeker's full exploration frontier, so the border propagation is
// replayed instead of recomputed.
func BenchmarkRepeatedSeeker(b *testing.B) {
	eng, seeker, kws := repeatedSeekerInstance(b)
	opts := Options{K: 10, Params: score.DefaultParams()}

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.Search(seeker, kws, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		pc := proxcache.New(256 << 20)
		warm := opts
		warm.ProxCache = pc
		// Populate the checkpoint once, then measure checkpoint-hit
		// searches only.
		if _, _, err := eng.Search(seeker, kws, warm); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.Search(seeker, kws, warm); err != nil {
				b.Fatal(err)
			}
		}
	})
}
