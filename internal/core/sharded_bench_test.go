package core

import (
	"fmt"
	"testing"

	"s3/internal/datagen"
	"s3/internal/graph"
	"s3/internal/index"
	"s3/internal/score"
	"s3/internal/text"
)

// benchInstance builds a benchmark-scale multi-component instance and
// picks the most candidate-heavy queries (common keywords).
func benchInstance(b *testing.B) (*graph.Instance, *index.Index, []graph.NID, []string) {
	b.Helper()
	o := datagen.DefaultTwitterOptions()
	o.Users, o.Tweets, o.Seed = 300, 2400, 42
	spec, _ := datagen.Twitter(o)
	in, err := graph.BuildSpec(spec, text.Analyzer{Lang: text.None})
	if err != nil {
		b.Fatal(err)
	}
	ix := index.Build(in)
	kws := in.SortedKeywordsByFrequency()
	if len(kws) == 0 {
		b.Fatal("no keywords")
	}
	// The most frequent keywords carry the most candidates.
	var picks []string
	for i := len(kws) - 1; i >= 0 && len(picks) < 3; i-- {
		picks = append(picks, in.Dict().String(kws[i]))
	}
	users := in.Users()[:4]
	return in, ix, users, picks
}

// BenchmarkShardedEngine measures the raw engine-level cost of the
// lockstep fan-out/merge search at 1/2/4 shards against the single
// engine, on candidate-heavy queries (the regime sharding targets).
func BenchmarkShardedEngine(b *testing.B) {
	in, ix, users, picks := benchInstance(b)
	opts := Options{K: 10, Params: score.Params{Gamma: 1.5, Eta: 0.8}}

	single := NewEngine(in, ix)
	run := func(b *testing.B, search func(graph.NID, []string) error) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := search(users[i%len(users)], []string{picks[i%len(picks)]}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("single", func(b *testing.B) {
		run(b, func(u graph.NID, kws []string) error {
			_, _, err := single.Search(u, kws, opts)
			return err
		})
	})
	for _, n := range []int{1, 2, 4} {
		se := buildSharded(b, in, ix, n)
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			run(b, func(u graph.NID, kws []string) error {
				_, _, err := se.Search(u, kws, opts)
				return err
			})
		})
	}
}
