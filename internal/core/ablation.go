package core

import (
	"fmt"
	"sort"

	"s3/internal/graph"
	"s3/internal/score"
)

// This file hosts the degenerate and ablated search modes the paper
// discusses around the main algorithm:
//
//   - §3.4 notes that with prox ≡ 1 the score reduces to classical
//     XML-IR: "⊕gen gives the best score to the lowest common ancestor
//     (LCA) of the nodes containing the query keywords" —
//     SearchContentOnly implements that degenerate mode;
//   - §5.3/§5.4 attribute S3k's qualitative edge over TopkS to the
//     all-paths proximity; TopKWithProximity lets benchmarks swap the
//     proximity (e.g. for the best-single-path ablation) while keeping
//     everything else fixed.

// TopKWithProximity computes the exact top-k answer under an arbitrary
// proximity vector (indexed by NID). It scores every candidate of every
// matching component and applies the greedy vertical-neighbour-free
// selection of Definition 3.2. Documents with vanishing scores are not
// returned.
func (e *Engine) TopKWithProximity(keywords []string, k int, params score.Params, prox []float64) ([]Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: k must be positive, got %d", k)
	}
	if len(prox) != e.in.NumNodes() {
		return nil, fmt.Errorf("core: proximity vector has %d entries, want %d", len(prox), e.in.NumNodes())
	}
	groups, possible, err := e.KeywordGroups(keywords)
	if err != nil {
		return nil, err
	}
	if !possible {
		return nil, nil
	}
	sc, err := score.NewScorer(e.in, e.ix, params, groups)
	if err != nil {
		return nil, err
	}
	type scored struct {
		d graph.NID
		s float64
	}
	var all []scored
	for _, comp := range e.ix.CompsForGroups(groups) {
		for _, d := range e.ix.CandidatesInComp(comp, groups) {
			if s := sc.Exact(d, prox); s > 1e-12 {
				all = append(all, scored{d: d, s: s})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].s != all[j].s {
			return all[i].s > all[j].s
		}
		return all[i].d < all[j].d
	})
	var out []Result
	for _, c := range all {
		excluded := false
		for _, r := range out {
			if e.in.VerticalNeighbors(r.Doc, c.d) {
				excluded = true
				break
			}
		}
		if excluded {
			continue
		}
		out = append(out, Result{Doc: c.d, URI: e.in.URIOf(c.d), Lower: c.s, Upper: c.s})
		if len(out) == k {
			break
		}
	}
	return out, nil
}

// SearchContentOnly runs the social-blind degenerate mode: every node has
// proximity 1, so ranking depends only on document structure and keyword
// semantics — classical LCA-flavoured XML keyword search.
func (e *Engine) SearchContentOnly(keywords []string, k int, params score.Params) ([]Result, error) {
	prox := make([]float64, e.in.NumNodes())
	for i := range prox {
		prox[i] = 1
	}
	return e.TopKWithProximity(keywords, k, params, prox)
}
