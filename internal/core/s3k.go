// Package core implements S3k, the top-k keyword-search algorithm of the
// paper (§4), over an S3 instance and its connection index.
//
// The engine follows Algorithm 1 with the optimisations of §5.2:
//
//   - the graph is explored breadth-first from the seeker through the
//     normalised transition matrix (borderProx vectors instead of the
//     borderPath table);
//   - candidate documents are discovered at component grain: when the
//     border first touches a node of a component matching every query
//     keyword, all documents of that component satisfying the conjunctive
//     keyword condition become candidates (GetDocuments);
//   - every candidate carries a [lower, upper] score interval, refined each
//     iteration from the bounded social proximity (ComputeCandidateBounds);
//   - a threshold bounds the best possible score of documents in components
//     not yet reached;
//   - the search stops when a provably correct top-k exists (Algorithm 2)
//     or, in any-time mode, when the iteration/time budget is exhausted
//     (Theorem 4.3).
//
// One deliberate deviation from the paper's presentation: instead of
// physically deleting dominated candidates (CleanCandidatesList), the
// engine recomputes a greedy "kept" selection every iteration. Permanent
// deletion based on a dominating vertical neighbour is unsound while score
// intervals still overlap — the dominator can itself be excluded later by
// an even better neighbour, resurrecting the dominated document (see
// TestSiblingResurrection in the tests). Recomputing the selection each
// round preserves the paper's pruning effect on the stop condition while
// remaining provably safe.
package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"s3/internal/dict"
	"s3/internal/graph"
	"s3/internal/index"
	"s3/internal/obs"
	"s3/internal/proxcache"
	"s3/internal/score"
)

// Options configure one search.
type Options struct {
	// K is the number of results (top-k).
	K int
	// Params are the score damping factors (γ, η).
	Params score.Params
	// MaxIterations caps exploration depth; 0 means unlimited. When the
	// cap is hit the engine returns the current best answer (any-time
	// termination).
	MaxIterations int
	// Budget caps wall-clock time; 0 means unlimited (any-time
	// termination as well).
	Budget time.Duration
	// Workers parallelises candidate bound computation (§5.2 runs eight
	// threads; we size by GOMAXPROCS). 0 or 1 disables parallelism.
	Workers int
	// Epsilon is the finite-precision tie-breaking margin of Theorem 4.2.
	// 0 defaults to 1e-12.
	Epsilon float64
	// ProxCache, when non-nil, caches seeker-proximity checkpoints across
	// searches: exploration resumes from the deepest cached frontier for
	// (seeker, Params) and the final frontier is published back after the
	// stop condition fires. Cached replay performs the identical
	// floating-point operations of a cold exploration, so answers —
	// documents, order and score intervals — are byte-identical with and
	// without the cache.
	ProxCache *proxcache.Cache
	// Trace, when non-nil, records the search's stages (resolution, each
	// exploration round) as spans under the trace's root. Tracing is
	// observational only: it never changes the answer.
	Trace *obs.Trace
	// Obs, when non-nil, receives the search's metrics observations
	// (rounds per search, per-round latency).
	Obs *obs.SearchMetrics
}

// DefaultOptions returns a top-10 search with default damping.
func DefaultOptions() Options {
	return Options{K: 10, Params: score.DefaultParams()}
}

// Result is one answer document with its score interval. After a
// non-any-time stop, Lower and Upper bracket the exact score tightly
// enough that the answer set is provably a top-k answer.
type Result struct {
	Doc   graph.NID
	URI   string
	Lower float64
	Upper float64
}

// StopReason explains why the search ended.
type StopReason string

const (
	// StopThreshold: the Algorithm 2 condition held — the answer is exact.
	StopThreshold StopReason = "threshold"
	// StopExhausted: the whole reachable graph was explored — the answer
	// is exact.
	StopExhausted StopReason = "exhausted"
	// StopBudget: any-time termination by time or iteration budget.
	StopBudget StopReason = "budget"
	// StopNoMatch: no component matches every query keyword.
	StopNoMatch StopReason = "nomatch"
	// StopPrecision: score intervals shrank below the floating-point
	// precision floor; remaining ties are unbreakable (Theorem 4.2's
	// finite-precision tie breaking).
	StopPrecision StopReason = "precision"
)

// Stats reports the work performed by one search.
type Stats struct {
	Iterations        int
	NodesReached      int
	ComponentsMatched int
	ComponentsReached int
	Candidates        int
	Reason            StopReason
	Elapsed           time.Duration
	// ResumedDepth is how many exploration rounds a proximity-cache hit
	// let the search skip (0 on a cold exploration) — the signal that
	// classifies a search as warm.
	ResumedDepth int
}

// Engine answers queries over one instance. It is immutable and safe for
// concurrent Search calls.
type Engine struct {
	in *graph.Instance
	ix *index.Index
}

// NewEngine pairs an instance with its connection index.
func NewEngine(in *graph.Instance, ix *index.Index) *Engine {
	return &Engine{in: in, ix: ix}
}

// Instance returns the engine's instance.
func (e *Engine) Instance() *graph.Instance { return e.in }

// Index returns the engine's connection index.
func (e *Engine) Index() *index.Index { return e.ix }

// term is one connection of a candidate: η^|pos| times the proximity of
// src.
type term struct {
	eta float64
	src graph.NID
}

// cand is a candidate document with its per-group connection terms.
type cand struct {
	d     graph.NID
	terms [][]term
	lower float64
	upper float64
}

// KeywordGroups resolves raw query keywords to their stemmed semantic
// extensions (Definition 2.1). The keyword space K of the model contains
// "all the URIs, plus the stemmed version of all literals" (§2): a query
// keyword matching the vocabulary verbatim (a URI, hashtag, entity
// mention...) is used as-is; otherwise it runs through the text pipeline.
// The boolean is false when some keyword can never match (it does not
// occur in the instance vocabulary at all), which makes the conjunctive
// query empty.
func (e *Engine) KeywordGroups(keywords []string) ([][]dict.ID, bool, error) {
	return ResolveKeywordGroups(e.in, keywords)
}

// Search runs S3k for the query (seeker, keywords) and returns the top-k
// answer (Definition 3.2): the k best-scoring documents such that no
// result is a vertical neighbour of a better one.
func (e *Engine) Search(seeker graph.NID, keywords []string, opts Options) ([]Result, Stats, error) {
	start := time.Now()
	var stats Stats
	if opts.K <= 0 {
		return nil, stats, fmt.Errorf("core: k must be positive, got %d", opts.K)
	}
	if int(seeker) < 0 || int(seeker) >= e.in.NumNodes() || e.in.KindOf(seeker) != graph.KindUser {
		return nil, stats, fmt.Errorf("core: seeker must be a user node")
	}
	eps := opts.Epsilon
	if eps == 0 {
		eps = 1e-12
	}

	root := opts.Trace.Span()
	resolve := root.StartChild("resolve")
	groups, possible, err := e.KeywordGroups(keywords)
	if err != nil {
		return nil, stats, err
	}
	if !possible {
		resolve.End()
		stats.Reason = StopNoMatch
		stats.Elapsed = time.Since(start)
		return nil, stats, nil
	}
	sc, err := score.NewScorer(e.in, e.ix, opts.Params, groups)
	if err != nil {
		return nil, stats, err
	}

	matched := make(map[int32]struct{})
	for _, c := range e.ix.CompsForGroups(groups) {
		matched[c] = struct{}{}
	}
	resolve.SetInt("matched_components", int64(len(matched)))
	resolve.End()
	stats.ComponentsMatched = len(matched)
	if len(matched) == 0 {
		stats.Reason = StopNoMatch
		stats.Elapsed = time.Since(start)
		return nil, stats, nil
	}

	it, ckey, resumedN := openIterator(e.in, seeker, opts)
	st := &searchState{
		shardState: shardState{
			e:        e,
			sc:       sc,
			groups:   groups,
			opts:     opts,
			eps:      eps,
			matched:  matched,
			admitted: make(map[int32]struct{}),
		},
		it: it,
	}

	reason := st.run(start, &stats)
	if opts.ProxCache != nil && it.RecordedDepth() > resumedN {
		// Publish only explorations that deepened the cached frontier: a
		// warm search that stopped within the resumed depth would copy the
		// layers just to lose the deepen-only race against itself.
		opts.ProxCache.Put(ckey, it.Checkpoint())
	}
	stats.Reason = reason
	stats.Iterations = st.it.N()
	stats.Candidates = len(st.cands)
	stats.ResumedDepth = resumedN
	stats.Elapsed = time.Since(start)
	if root != nil {
		root.SetInt("rounds", int64(stats.Iterations))
		root.SetInt("resumed_depth", int64(resumedN))
		root.SetAttr("stop", string(reason))
	}
	if opts.Obs != nil {
		opts.Obs.Rounds.Observe(float64(stats.Iterations))
	}

	return st.results(), stats, nil
}

// openIterator builds the search's proximity iterator: resumed from the
// deepest cached checkpoint when the options carry a cache (recording
// either way, so the search can publish its final frontier back), plain
// otherwise. Resuming is transparent to the search loop — replayed Steps
// yield bit-identical state and discovery order, they just skip the
// matrix propagation. The returned depth is what the cache already
// covers (0 on a cold start); publication is worthwhile only beyond it.
func openIterator(in *graph.Instance, seeker graph.NID, opts Options) (*score.Iterator, proxcache.Key, int) {
	if opts.ProxCache == nil {
		return score.NewIterator(in, opts.Params, seeker), proxcache.Key{}, 0
	}
	ckey := proxcache.Key{Seeker: seeker, Params: opts.Params}
	if cp := opts.ProxCache.Get(ckey, in); cp != nil {
		if it, err := score.ResumeIterator(in, cp); err == nil {
			return it, ckey, cp.N()
		}
	}
	return score.NewRecordingIterator(in, opts.Params, seeker), ckey, 0
}

// WarmProximity pre-explores a seeker's social neighbourhood to the given
// depth (bounded by graph exhaustion and the precision floor) and
// publishes the frontier into the cache, deepening any existing
// checkpoint. The next search for (seeker, params) replays the recorded
// layers instead of propagating the matrix. It returns the depth now
// covered by the cache for the key (0 when warming is not possible) and
// whether this call actually deepened it — a no-op on an already-covered
// key reports seeded == false.
func (e *Engine) WarmProximity(pc *proxcache.Cache, seeker graph.NID, params score.Params, maxDepth int) (depth int, seeded bool) {
	if pc == nil || maxDepth <= 0 {
		return 0, false
	}
	if int(seeker) < 0 || int(seeker) >= e.in.NumNodes() || e.in.KindOf(seeker) != graph.KindUser {
		return 0, false
	}
	if err := params.Validate(); err != nil {
		return 0, false
	}
	key := proxcache.Key{Seeker: seeker, Params: params}
	var it *score.Iterator
	covered := 0
	if cp := pc.Get(key, e.in); cp != nil {
		if cp.N() >= maxDepth {
			return cp.N(), false
		}
		covered = cp.N()
		it, _ = score.ResumeIterator(e.in, cp)
	}
	if it == nil {
		it = score.NewRecordingIterator(e.in, params, seeker)
	}
	for !it.Done() && it.N() < maxDepth && it.TailBound() >= 1e-15 {
		it.Step()
	}
	if it.RecordedDepth() <= covered {
		// The graph was exhausted within the covered depth: nothing new.
		return covered, false
	}
	pc.Put(key, it.Checkpoint())
	return it.N(), true
}

// shardState carries the per-shard portion of a search's mutable state:
// matched and admitted components and the candidate list with its score
// intervals. A single-engine search owns exactly one; a sharded search
// (ShardedEngine) drives one per shard off a shared proximity iterator.
type shardState struct {
	e        *Engine
	sc       *score.Scorer
	groups   [][]dict.ID
	opts     Options
	eps      float64
	matched  map[int32]struct{}
	admitted map[int32]struct{}

	cands []*cand

	// Sharded-search scratch, refreshed every lockstep round: the
	// shard-local greedy selection and the first candidate whose relative
	// order is still uncertain (nil when the local selection is
	// trustworthy).
	kept      []*cand
	uncertain *cand

	// order is greedySelect's persistent sort scratch: cands is append-only,
	// so the copy is refreshed only on rounds that admitted new candidates
	// and merely re-sorted (by the freshly computed bounds) otherwise.
	order []*cand
}

// searchState carries the mutable state of one single-engine search.
type searchState struct {
	shardState
	it *score.Iterator

	reached int

	selection []*cand // current greedy top-k (by upper bound)
}

// maxTracedRounds caps per-round span recording: a long any-time search
// must not grow an unbounded trace tree (the round histogram still sees
// every round).
const maxTracedRounds = 256

// endRound records one finished exploration round into the search's
// observability sinks (cheap no-op when untraced and unmetered).
func (st *searchState) endRound(sp *obs.Span, roundStart time.Time) {
	if st.opts.Obs != nil {
		st.opts.Obs.RoundSeconds.Observe(time.Since(roundStart).Seconds())
	}
	if sp != nil {
		sp.SetInt("n", int64(st.it.N()))
		sp.SetInt("admitted", int64(len(st.admitted)))
		sp.SetInt("candidates", int64(len(st.cands)))
		sp.End()
	}
}

func (st *searchState) run(start time.Time, stats *Stats) StopReason {
	root := st.opts.Trace.Span()
	traced := 0
	for {
		if st.it.Done() {
			st.computeBounds(0, st.it.AllProx())
			st.selection, _ = st.greedySelect()
			return StopExhausted
		}
		if st.opts.MaxIterations > 0 && st.it.N() >= st.opts.MaxIterations {
			st.computeBounds(st.it.TailBound(), st.it.AllProx())
			st.selection, _ = st.greedySelect()
			return StopBudget
		}
		if st.opts.Budget > 0 && time.Since(start) > st.opts.Budget {
			st.computeBounds(st.it.TailBound(), st.it.AllProx())
			st.selection, _ = st.greedySelect()
			return StopBudget
		}

		var sp *obs.Span
		if root != nil && traced < maxTracedRounds {
			sp = root.StartChild("round")
			traced++
		}
		var roundStart time.Time
		if sp != nil || st.opts.Obs != nil {
			roundStart = time.Now()
		}

		discovered := st.it.Step()
		st.reached += len(discovered)
		stats.NodesReached = st.reached
		for _, nd := range discovered {
			comp := st.e.in.CompOf(nd)
			if comp < 0 {
				continue
			}
			if _, ok := st.matched[comp]; !ok {
				continue
			}
			if _, dup := st.admitted[comp]; dup {
				continue
			}
			st.admitted[comp] = struct{}{}
			st.admitComponent(comp)
		}
		stats.ComponentsReached = len(st.admitted)

		tail := st.it.TailBound()
		st.computeBounds(tail, st.it.AllProx())

		// Once every matching component has been discovered, no document
		// outside the candidate set can ever match the query.
		threshold := 0.0
		if len(st.admitted) < len(st.matched) {
			threshold = st.sc.Threshold(st.it.SourceTailBound())
		}
		selection, uncertain := st.greedySelect()
		certain := uncertain == nil
		st.selection = selection

		// The answer is final when the selection is trustworthy, cannot
		// grow from still-undiscovered components (which can only matter
		// while the threshold is non-negligible), and provably dominates
		// every other candidate as well as anything undiscovered.
		mayGrow := len(selection) < st.opts.K && threshold > st.eps
		if certain && !mayGrow {
			if len(selection) > 0 {
				minLower := math.Inf(1)
				for _, c := range selection {
					minLower = math.Min(minLower, c.lower)
				}
				maxOther := st.maxOtherUpper(selection)
				if maxOther <= minLower+st.eps && threshold <= minLower+st.eps {
					st.endRound(sp, roundStart)
					return StopThreshold
				}
			} else if threshold <= st.eps {
				// Nothing can ever score above zero.
				st.endRound(sp, roundStart)
				return StopThreshold
			}
		}

		// Finite-precision tie breaking (Theorem 4.2): when the remaining
		// uncertainty is below the floating-point noise floor, further
		// exploration cannot separate candidates or surface new ones.
		// This guard must be reachable on *every* iteration — matched
		// components disconnected from the seeker would otherwise keep
		// the search spinning forever (the border cycles and never
		// empties on cyclic graphs).
		if st.it.TailBound() < 1e-15 {
			st.computeBounds(st.it.TailBound(), st.it.AllProx())
			st.selection, _ = st.greedySelect()
			st.endRound(sp, roundStart)
			return StopPrecision
		}

		st.endRound(sp, roundStart)
	}
}

// admitComponent implements GetDocuments: all documents of the component
// satisfying the conjunctive keyword condition become candidates, with
// their connection terms resolved once.
func (st *shardState) admitComponent(comp int32) {
	in := st.e.in
	for _, d := range st.e.ix.CandidatesInComp(comp, st.groups) {
		c := &cand{d: d, terms: make([][]term, len(st.groups))}
		for gi := range st.groups {
			for _, ev := range st.sc.GroupEvents(comp, gi) {
				rel, ok := in.PosLen(d, ev.Frag)
				if !ok {
					continue
				}
				src := ev.Src
				if ev.Type == index.Contains {
					src = d
				}
				c.terms[gi] = append(c.terms[gi], term{
					eta: st.sc.EtaPow(int(rel)),
					src: src,
				})
			}
		}
		st.cands = append(st.cands, c)
	}
}

// computeBounds refreshes every candidate's score interval from the
// given bounded proximity vector (ComputeCandidateBounds).
func (st *shardState) computeBounds(tail float64, all []float64) {
	workers := st.opts.Workers
	if workers <= 1 || len(st.cands) < 64 {
		st.boundRange(0, len(st.cands), tail, all)
		return
	}
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	chunk := (len(st.cands) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(st.cands))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			st.boundRange(lo, hi, tail, all)
		}(lo, hi)
	}
	wg.Wait()
}

func (st *shardState) boundRange(lo, hi int, tail float64, all []float64) {
	for _, c := range st.cands[lo:hi] {
		c.lower, c.upper = 1, 1
		for _, terms := range c.terms {
			var mLo, mHi float64
			for _, t := range terms {
				p := all[t.src]
				mLo += t.eta * p
				mHi += t.eta * math.Min(1, p+tail)
			}
			c.lower *= mLo
			c.upper *= mHi
		}
	}
}

// candBefore is the canonical candidate order: upper bound descending,
// ties by node id. Node ids are global across every projection of an
// instance, so the order is identical whether candidates are walked by
// one engine or merged across shards.
func candBefore(a, b *cand) bool {
	if a.upper != b.upper {
		return a.upper > b.upper
	}
	return a.d < b.d
}

// greedySelect computes the current best-possible answer: candidates are
// visited by decreasing upper bound (ties by node id) and greedily
// selected, skipping any candidate that is certainly dominated by an
// already-selected vertical neighbour. If a candidate meets a selected
// neighbour whose relative order is still uncertain, the walk stops and
// returns that candidate (nil when the selection is trustworthy): the
// selection so far is valid but must not be extended, and the search must
// continue.
func (st *shardState) greedySelect() ([]*cand, *cand) {
	if len(st.order) != len(st.cands) {
		st.order = append(st.order[:0], st.cands...)
	}
	order := st.order
	// The comparator is a total order (ties broken by unique node id), so
	// re-sorting the previous round's permutation under the new bounds
	// yields the same slice a fresh copy would.
	sort.Slice(order, func(i, j int) bool { return candBefore(order[i], order[j]) })
	var sel []*cand
	for _, c := range order {
		if c.upper <= st.eps {
			// A document none of whose connection sources is socially
			// reachable scores zero and is not a meaningful answer.
			break
		}
		dominated := false
		uncertain := false
		for _, t := range sel {
			if !st.e.in.VerticalNeighbors(t.d, c.d) {
				continue
			}
			if t.lower >= c.upper-st.eps {
				// t certainly at least as good (or an unbreakable tie,
				// resolved deterministically in t's favour by the sort).
				dominated = true
				break
			}
			uncertain = true
			break
		}
		if uncertain {
			return sel, c
		}
		if dominated {
			continue
		}
		sel = append(sel, c)
		if len(sel) == st.opts.K {
			break
		}
	}
	return sel, nil
}

// maxOtherUpper returns the best upper bound among candidates outside the
// selection that are not certainly dominated by a selected neighbour.
func (st *shardState) maxOtherUpper(sel []*cand) float64 {
	inSel := make(map[graph.NID]struct{}, len(sel))
	for _, c := range sel {
		inSel[c.d] = struct{}{}
	}
	maxOther := 0.0
	for _, c := range st.cands {
		if _, ok := inSel[c.d]; ok {
			continue
		}
		dominated := false
		for _, t := range sel {
			if st.e.in.VerticalNeighbors(t.d, c.d) && t.lower >= c.upper-st.eps {
				dominated = true
				break
			}
		}
		if !dominated && c.upper > maxOther {
			maxOther = c.upper
		}
	}
	return maxOther
}

func (st *searchState) results() []Result {
	out := make([]Result, 0, len(st.selection))
	for _, c := range st.selection {
		out = append(out, Result{
			Doc:   c.d,
			URI:   st.e.in.URIOf(c.d),
			Lower: c.lower,
			Upper: c.upper,
		})
	}
	return out
}

// CandidateCount returns how many distinct documents satisfy the
// conjunctive keyword condition of the given groups, across all matching
// components — the "candidates examined" notion used by the §5.4
// semantic-reachability measure.
func (e *Engine) CandidateCount(groups [][]dict.ID) int {
	n := 0
	for _, comp := range e.ix.CompsForGroups(groups) {
		n += len(e.ix.CandidatesInComp(comp, groups))
	}
	return n
}
