// Reviews: a Yelp-like scenario (the paper's I3 shape) — JSON review
// documents, symmetric friendships, review chains as comments, and
// fragment-grain results: searching returns the *paragraph* of a long
// review that matches, not just the review.
//
// Run with: go run ./examples/reviews
package main

import (
	"fmt"
	"log"
	"strings"

	s3 "s3"
)

func main() {
	b := s3.NewBuilder(s3.English)

	for _, u := range []string{"maya", "noor", "otis", "pia"} {
		must(b.AddUser(u))
	}
	friends := [][2]string{{"maya", "noor"}, {"noor", "otis"}, {"maya", "pia"}}
	for _, f := range friends {
		must(b.AddSocialAs(f[0], f[1], 1, "friend"))
		must(b.AddSocialAs(f[1], f[0], 1, "friend"))
	}

	// First review of "Luigi's" — a structured document; later reviews
	// comment on it, forming the per-business chain of §5.1.
	must(b.AddDocumentJSON("r1", strings.NewReader(`{
		"stars": 4,
		"summary": "Hidden gem for pasta lovers",
		"food": "The carbonara is silky and generous, truly handmade pasta",
		"service": "Waiters are attentive even on busy nights",
		"price": "Fair prices for the quality"
	}`)))
	must(b.AddPost("r1", "noor"))

	must(b.AddDocumentJSON("r2", strings.NewReader(`{
		"stars": 5,
		"text": "Came for the pasta after reading this, stayed for the tiramisu"
	}`)))
	must(b.AddPost("r2", "otis"))
	must(b.AddCommentAs("r2", "r1", "reviews"))

	// Pia disagrees with the service paragraph specifically: a comment on
	// a fragment, not on the whole review.
	must(b.AddDocumentJSON("r3", strings.NewReader(`{
		"text": "Service was slow when we went, though the pasta made up for it"
	}`)))
	must(b.AddPost("r3", "pia"))

	// JSON keys are visited in sorted order, so r1's children are
	// food (r1.1), price (r1.2), service (r1.3), stars (r1.4),
	// summary (r1.5) — the service paragraph is r1.3.
	must(b.AddComment("r3", "r1.3"))

	inst, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	for _, query := range [][]string{{"pasta"}, {"service"}, {"pasta", "service"}} {
		results, err := inst.Search("maya", query, s3.WithK(3))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("maya searches %v:\n", query)
		for i, r := range results {
			fmt.Printf("  %d. fragment %-5s of review %-3s score ∈ [%.4f, %.4f]\n",
				i+1, r.URI, r.Document, r.Lower, r.Upper)
		}
		fmt.Println()
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
