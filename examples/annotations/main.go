// Annotations: the higher-level-tag machinery of requirement R4 — an NLP
// tool annotates a corpus, a curator annotates (and endorses) the tool's
// annotations, and queries exploit both levels. Tag classes subclass
// S3:relatedTo, so the semantics layer knows tool annotations *are* tags.
//
// Run with: go run ./examples/annotations
package main

import (
	"fmt"
	"log"

	s3 "s3"
)

func main() {
	b := s3.NewBuilder(s3.English)

	must(b.AddUser("nlp-tool")) // software agents are users too
	must(b.AddUser("curator"))
	must(b.AddUser("reader"))
	must(b.AddSocialAs("reader", "curator", 0.9, "trusts"))
	must(b.AddSocialAs("curator", "nlp-tool", 0.6, "operates"))

	// A small annotated corpus.
	must(b.AddDocument(&s3.DocNode{URI: "doc1", Name: "article", Children: []*s3.DocNode{
		{Name: "par", Text: "The spacecraft entered orbit around Europa last night"},
		{Name: "par", Text: "Mission control confirmed the instruments are nominal"},
	}}))
	must(b.AddDocumentText("doc2", "article", "Farmers in the valley report an early harvest"))
	must(b.AddPost("doc1", "curator"))
	must(b.AddPost("doc2", "curator"))

	// Level-1: the NLP tool recognises an entity in doc1's first
	// paragraph.
	must(b.AddTagAs("ann1", "doc1.1", "nlp-tool", "astronomy", "NLP:recognize"))
	// Level-2 (R4): the curator annotates the *annotation* with a
	// provenance/quality judgement — its keyword still reaches doc1.
	must(b.AddTagAs("ann2", "ann1", "curator", "verified", "curation"))
	// The curator also endorses the tool's annotation (keyword-less):
	// the endorsement inherits ann1's connections with the curator as
	// source, boosting doc1 for readers close to the curator.
	must(b.AddEndorsement("ann3", "ann1", "curator"))

	inst, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(inst.Stats())

	// The RDF side-door: ask the instance itself which tool-produced
	// annotations were curated, SPARQL-style.
	rows, err := inst.QueryRDF(
		"?ann rdf:type NLP:recognize",
		"?ann S3:hasSubject ?frag",
		"?meta S3:hasSubject ?ann",
		"?meta S3:hasAuthor ?curator",
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("annotation %s on %s was reviewed by %s (via %s)\n", r["ann"], r["frag"], r["curator"], r["meta"])
	}
	fmt.Println()

	for _, query := range [][]string{{"astronomy"}, {"verified"}, {"orbit"}} {
		results, err := inst.Search("reader", query, s3.WithK(3))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("reader searches %v:\n", query)
		if len(results) == 0 {
			fmt.Println("  (no results)")
		}
		for i, r := range results {
			fmt.Printf("  %d. fragment %-7s of %-5s score ∈ [%.4f, %.4f]\n",
				i+1, r.URI, r.Document, r.Lower, r.Upper)
		}
		fmt.Println()
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
