// Quickstart: the paper's Figure 1 scenario through the public API.
//
// Five users exchange around an article d0: u2 replies with a post
// mentioning an "M.S.", u3 comments on a specific paragraph, u4 tags
// another paragraph with "university". A knowledge base states that an
// M.S. is a degree. The seeker u1 (a friend of the article's author)
// searches for "degree" — and finds u2's reply even though it never says
// "degree", thanks to the ontology and the reply link.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	s3 "s3"
)

func main() {
	b := s3.NewBuilder(s3.English)

	for _, u := range []string{"u0", "u1", "u2", "u3", "u4"} {
		must(b.AddUser(u))
	}
	must(b.AddSocialAs("u1", "u0", 0.9, "friendOf")) // u1 is u0's friend

	// Knowledge base: an M.S. is a degree; a degree is a qualification.
	// Ontology keywords are written in stemmed form (Stem) so they line
	// up with the indexed content vocabulary.
	b.AddTriple(b.Stem("m.s"), "rdfs:subClassOf", b.Stem("degree"))
	b.AddTriple(b.Stem("degree"), "rdfs:subClassOf", b.Stem("qualification"))

	// d0: a structured article by u0.
	must(b.AddDocument(&s3.DocNode{URI: "d0", Name: "article", Children: []*s3.DocNode{
		{Name: "sec", Text: "introduction to higher education"},
		{Name: "sec", Text: "methodology"},
		{Name: "sec", Children: []*s3.DocNode{
			{Name: "par", Text: "context of the debate"},
			{Name: "par", Text: "a heated debate on the value of studying"}, // d0.3.2
		}},
		{Name: "sec", Text: "data"},
		{Name: "sec", Children: []*s3.DocNode{
			{Name: "par", Text: "a degree does give more opportunities"}, // d0.5.1
		}},
	}}))
	must(b.AddPost("d0", "u0"))

	// d1: u2's reply — mentions an M.S. but never the word "degree".
	must(b.AddDocumentText("d1", "reply", "When I got my M.S. at UAlberta in 2012"))
	must(b.AddPost("d1", "u2"))
	must(b.AddCommentAs("d1", "d0", "repliesTo"))

	// d2: u3 comments on the exact paragraph d0.3.2.
	must(b.AddDocumentText("d2", "comment", "universities matter in this debate"))
	must(b.AddPost("d2", "u3"))
	must(b.AddComment("d2", "d0.3.2"))

	// u4 tags paragraph d0.5.1.
	must(b.AddTag("a", "d0.5.1", "u4", "university"))

	inst, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Instance:")
	fmt.Println(inst.Stats())
	fmt.Printf("Ext(degree) = %v\n\n", inst.Extension("degree"))

	for _, query := range [][]string{{"degree"}, {"university"}, {"university", "debate"}} {
		results, info, err := inst.SearchInfoed("u1", query, s3.WithK(3))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("u1 searches %v (exact=%v, %d iterations, %v):\n",
			query, info.Exact, info.Iterations, info.Elapsed)
		for i, r := range results {
			fmt.Printf("  %d. fragment %-8s (document %-4s) score ∈ [%.4f, %.4f]\n",
				i+1, r.URI, r.Document, r.Lower, r.Upper)
		}
		fmt.Println()
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
