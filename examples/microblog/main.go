// Microblog: a Twitter-like scenario (the paper's I1 shape) exercised
// through the public API — XML tweets with text/date/geo structure,
// retweets as endorsements, hashtag tags, replies as comments, and
// DBpedia-style entity semantics.
//
// Run with: go run ./examples/microblog
package main

import (
	"fmt"
	"log"
	"strings"

	s3 "s3"
)

type tweet struct {
	uri     string
	author  string
	text    string
	city    string
	replyTo string // URI of the tweet this replies to ("" = original)
}

func main() {
	b := s3.NewBuilder(s3.English)

	users := []string{"ana", "bob", "cam", "dee", "eli"}
	for _, u := range users {
		must(b.AddUser(u))
	}
	// Follower graph (directed, weighted by interaction strength).
	must(b.AddSocialAs("ana", "bob", 0.9, "follows"))
	must(b.AddSocialAs("ana", "cam", 0.4, "follows"))
	must(b.AddSocialAs("bob", "dee", 0.7, "follows"))
	must(b.AddSocialAs("cam", "dee", 0.6, "follows"))
	must(b.AddSocialAs("dee", "eli", 0.8, "follows"))

	// A mini knowledge base: espresso and latte are coffee drinks.
	b.AddTriple(b.Stem("espresso"), "rdfs:subClassOf", b.Stem("coffee"))
	b.AddTriple(b.Stem("latte"), "rdfs:subClassOf", b.Stem("coffee"))
	b.AddTriple(b.Stem("coffee"), "rdfs:subClassOf", b.Stem("beverage"))

	tweets := []tweet{
		{uri: "t1", author: "dee", text: "Best espresso in town, hands down", city: "Lyon"},
		{uri: "t2", author: "eli", text: "The latte art at the new place is unreal", city: "Lyon"},
		{uri: "t3", author: "cam", text: "Morning run along the river", city: "Lyon"},
		{uri: "t4", author: "bob", text: "Agreed, their roast is exceptional", city: "Paris", replyTo: "t1"},
	}
	for _, t := range tweets {
		xml := fmt.Sprintf(
			`<tweet><text>%s</text><date>2026-06-10</date><geo>%s</geo></tweet>`,
			t.text, t.city)
		must(b.AddDocumentXML(t.uri, strings.NewReader(xml)))
		must(b.AddPost(t.uri, t.author))
		if t.replyTo != "" {
			must(b.AddCommentAs(t.uri, t.replyTo, "repliesTo"))
		}
	}

	// Retweets: bob retweets t1 introducing a hashtag; ana plainly
	// endorses t2 (no keyword).
	must(b.AddTagAs("rt1", "t1", "bob", "#coffeetime", "retweet"))
	must(b.AddEndorsement("rt2", "t2", "ana"))

	inst, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Ana searches for coffee: t1 (espresso) and t2 (latte) match only
	// through the ontology; t1 is additionally boosted by bob's retweet
	// and reply (ana follows bob closely).
	for _, query := range [][]string{{"coffee"}, {"#coffeetime"}, {"espresso"}} {
		results, err := inst.Search("ana", query, s3.WithK(3))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ana searches %v:\n", query)
		for i, r := range results {
			fmt.Printf("  %d. %-6s (tweet %s) score ∈ [%.4f, %.4f]\n",
				i+1, r.URI, r.Document, r.Lower, r.Upper)
		}
		fmt.Println()
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
