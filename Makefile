# Developer entry points. The repository is plain `go build ./...` /
# `go test ./...`; the targets here only add the benchmark-to-JSON
# pipeline used to track performance across PRs.

# BENCHTIME=1x turns the bench target into the CI smoke run (compile and
# execute every benchmark once, no timing fidelity).
BENCHTIME ?= 200ms
BENCH_OUT ?= BENCH_9.json

.PHONY: build test race bench metrics-lint

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# bench runs the engine + serving benchmark suite and writes the results
# (name, ns/op, allocs/op per benchmark) to $(BENCH_OUT) as JSON.
bench:
	go run ./cmd/benchjson -out $(BENCH_OUT) -benchtime $(BENCHTIME) ./...

# metrics-lint fails if any registered /metrics name is missing from the
# README's Observability catalogue.
metrics-lint:
	sh scripts/metrics-lint.sh
