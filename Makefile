# Developer entry points. The repository is plain `go build ./...` /
# `go test ./...`; the targets here only add the benchmark-to-JSON
# pipeline used to track performance across PRs.

# BENCHTIME=1x turns the bench target into the CI smoke run (compile and
# execute every benchmark once, no timing fidelity).
BENCHTIME ?= 200ms

# BENCH_TARGET is the committed benchmark snapshot this tree is expected
# to produce. bench refuses to write anywhere else unless
# BENCH_OUT_OVERRIDE=1 (scratch runs, the CI smoke), so a PR that bumps
# the benchmarks can't silently forget to commit the matching snapshot.
BENCH_TARGET := BENCH_10.json
BENCH_OUT ?= $(BENCH_TARGET)

.PHONY: build test race bench metrics-lint

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# bench runs the engine + serving benchmark suite and writes the results
# (name, ns/op, allocs/op and custom metric columns per benchmark) to
# $(BENCH_OUT) as JSON.
bench:
ifneq ($(BENCH_OUT),$(BENCH_TARGET))
ifneq ($(BENCH_OUT_OVERRIDE),1)
	$(error BENCH_OUT=$(BENCH_OUT) but this tree's snapshot is $(BENCH_TARGET); set BENCH_OUT_OVERRIDE=1 for a scratch run)
endif
endif
	go run ./cmd/benchjson -out $(BENCH_OUT) -benchtime $(BENCHTIME) ./...

# metrics-lint fails if any registered /metrics name is missing from the
# README's Observability catalogue.
metrics-lint:
	sh scripts/metrics-lint.sh
