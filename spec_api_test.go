package s3

import (
	"bytes"
	"strings"
	"testing"
)

// A spec written by one builder rebuilds into an equivalent instance:
// same statistics, same search answers.
func TestSpecRoundTripThroughFacade(t *testing.T) {
	b := NewBuilder(English)
	if err := b.AddUser("alice"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddUser("bob"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddSocial("alice", "bob", 0.8); err != nil {
		t.Fatal(err)
	}
	b.AddTriple(b.Stem("m.s"), "rdfs:subClassOf", b.Stem("degree"))
	if err := b.AddDocumentText("post1", "post", "I finished my M.S. thesis"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPost("post1", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddTag("t1", "post1", "bob", "milestone"); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := b.EncodeSpec(&buf); err != nil {
		t.Fatal(err)
	}
	original, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := BuildFromSpec(&buf, English)
	if err != nil {
		t.Fatal(err)
	}

	if original.Stats() != rebuilt.Stats() {
		t.Fatalf("stats differ:\n%v\nvs\n%v", original.Stats(), rebuilt.Stats())
	}
	q := []string{"degree"}
	r1, err := original.Search("alice", q, WithK(3))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := rebuilt.Search("alice", q, WithK(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) {
		t.Fatalf("answers differ in size: %v vs %v", r1, r2)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("answers differ at %d: %+v vs %+v", i, r1[i], r2[i])
		}
	}
}

func TestBuildFromSpecErrors(t *testing.T) {
	if _, err := BuildFromSpec(strings.NewReader("not a gob stream"), English); err == nil {
		t.Fatal("expected decode error")
	}
}
