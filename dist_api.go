package s3

import (
	"context"
	"fmt"
	"sync/atomic"

	"s3/internal/core"
	"s3/internal/dshard"
	"s3/internal/graph"
	"s3/internal/obs"
	"s3/internal/snap"
)

// DistributedInstance is a Queryable that fronts a fleet of per-shard
// worker processes: it owns only the shard-set manifest (seeker and
// keyword resolution, URI mapping, shard table) and scatter/gathers the
// lockstep search rounds across worker replicas over the binary round
// protocol. Answers — documents, order and score intervals — are
// byte-identical to serving the same shard set in one process; worker
// membership is driven by their /healthz and failed searches retry on
// surviving replicas.
//
// The proximity exploration runs inside the workers, so the local
// proximity-cache hooks (SetProxCache, WarmProximity) are no-ops here.
type DistributedInstance struct {
	man    *snap.ManifestSnapshot
	coord  *dshard.Coordinator
	cancel context.CancelFunc

	// obsm is the optional search-metrics sink fed by the coordinated
	// rounds (the coordinator observes round latency on its side of the
	// wire).
	obsm atomic.Pointer[SearchMetrics]
}

var _ Queryable = (*DistributedInstance)(nil)

// CoordinatorOption tunes a coordinator opened by OpenCoordinator.
type CoordinatorOption func(*dshard.CoordinatorConfig)

// WithRoundBatch caps how many lockstep rounds the coordinator may
// request from a worker in one RPC (0 = default, 1 = one round per RPC
// over the batched endpoint, negative = classic per-round protocol
// only). Grouping rounds into fewer RPCs never changes answers: the
// coordinator replays every per-round stop decision locally.
func WithRoundBatch(n int) CoordinatorOption {
	return func(cfg *dshard.CoordinatorConfig) { cfg.MaxRoundBatch = n }
}

// WithoutSpeculation disables speculative round pipelining (issuing the
// next batch to a worker before the coordinator has consumed the
// previous one). Useful to price the overlap in benchmarks.
func WithoutSpeculation() CoordinatorOption {
	return func(cfg *dshard.CoordinatorConfig) { cfg.NoSpeculation = true }
}

// WithoutHedging disables hedged round RPCs (racing a replica when the
// primary's reply is slower than its observed P99). Hedges never change
// answers — both replicas compute identical rounds — so this is a knob
// for pricing the tail-latency win, not a correctness escape hatch.
func WithoutHedging() CoordinatorOption {
	return func(cfg *dshard.CoordinatorConfig) { cfg.NoHedging = true }
}

// WithoutDelta disables proto-5 delta round framing: workers reply with
// classic full blocks. Framing never changes answers — this is the A/B
// knob for pricing the delta encoding's wire savings.
func WithoutDelta() CoordinatorOption {
	return func(cfg *dshard.CoordinatorConfig) { cfg.NoDelta = true }
}

// OpenCoordinator opens the shard-set manifest and wires a coordinator
// over the worker URLs. Membership is probed immediately and refreshed
// in the background; workers that are still loading join as soon as
// their /healthz turns serving, so it is not an error if coverage is
// incomplete at open time (searches fail until every shard has a live
// worker). Close stops the probe loop and releases the manifest.
func OpenCoordinator(manifestPath string, workerURLs []string, mode LoadMode, opts ...CoordinatorOption) (*DistributedInstance, error) {
	man, err := snap.OpenManifest(manifestPath, snap.LoadMode(mode))
	if err != nil {
		return nil, err
	}
	cfg := dshard.CoordinatorConfig{
		WorkerURLs: workerURLs,
		ShardCount: len(man.Layout.Shards),
		SetID:      man.Layout.SetID,
	}
	for _, o := range opts {
		o(&cfg)
	}
	coord, err := dshard.NewCoordinator(cfg)
	if err != nil {
		man.Close()
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	_ = coord.Probe(ctx)
	go coord.Run(ctx)
	return &DistributedInstance{man: man, coord: coord, cancel: cancel}, nil
}

// Probe refreshes worker membership synchronously and reports whether
// every shard has a healthy worker (startup diagnostics).
func (di *DistributedInstance) Probe(ctx context.Context) error {
	return di.coord.Probe(ctx)
}

// NumShards returns the shard count of the served set.
func (di *DistributedInstance) NumShards() int { return len(di.man.Layout.Shards) }

// HasUser reports whether uri names a user (the manifest's substrate
// carries all users).
func (di *DistributedInstance) HasUser(uri string) bool {
	n, ok := di.man.Base.NIDOf(uri)
	return ok && di.man.Base.KindOf(n) == graph.KindUser
}

// Extension returns the semantic extension of a keyword.
func (di *DistributedInstance) Extension(keyword string) []string {
	return extension(di.man.Base, keyword)
}

// Stats returns the whole-instance statistics from the manifest.
func (di *DistributedInstance) Stats() Stats { return di.man.Base.Stats() }

// Shards reports the per-shard rows: content counts from the worker
// fleet's probed stats (aggregated across replicas), falling back to the
// manifest layout before the first probe lands.
func (di *DistributedInstance) Shards() []ShardStat {
	cs := di.coord.Stats()
	out := make([]ShardStat, len(di.man.Layout.Shards))
	for s, desc := range di.man.Layout.Shards {
		out[s] = ShardStat{Documents: desc.Docs, Components: len(desc.Comps)}
		if s < len(cs.Shards) {
			row := cs.Shards[s]
			if row.Documents > 0 || row.Components > 0 {
				out[s].Documents, out[s].Components, out[s].Tags = row.Documents, row.Components, row.Tags
			}
			out[s].Searches, out[s].Rounds = row.Searches, row.Rounds
		}
	}
	return out
}

// Search runs a distributed S3k top-k search; the answer equals the
// single-process sharded answer.
func (di *DistributedInstance) Search(seekerURI string, keywords []string, opts ...Option) ([]Result, error) {
	rs, _, err := di.SearchInfoed(seekerURI, keywords, opts...)
	return rs, err
}

// SearchInfoed is Search returning termination information as well.
func (di *DistributedInstance) SearchInfoed(seekerURI string, keywords []string, opts ...Option) ([]Result, SearchInfo, error) {
	cfg := searchConfig{opts: core.DefaultOptions()}
	for _, o := range opts {
		o(&cfg)
	}
	base := di.man.Base
	seeker, ok := base.NIDOf(seekerURI)
	if !ok || base.KindOf(seeker) != graph.KindUser {
		return nil, SearchInfo{}, fmt.Errorf("s3: unknown seeker %q", seekerURI)
	}
	if cfg.opts.K <= 0 {
		return nil, SearchInfo{}, fmt.Errorf("s3: k must be positive, got %d", cfg.opts.K)
	}
	eps := cfg.opts.Epsilon
	if eps == 0 {
		eps = 1e-12
	}
	groups, possible, err := core.ResolveKeywordGroups(base, keywords)
	if err != nil {
		return nil, SearchInfo{}, err
	}
	if !possible {
		return nil, SearchInfo{Exact: true}, nil
	}
	spec := core.SearchSpec{
		Seeker:  seeker,
		Groups:  groups,
		K:       cfg.opts.K,
		Params:  cfg.opts.Params,
		Epsilon: eps,
	}
	copts := core.CoordOptions{
		MaxIterations: cfg.opts.MaxIterations,
		Budget:        cfg.opts.Budget,
		Trace:         cfg.opts.Trace,
		Obs:           di.obsm.Load(),
		Ctx:           cfg.ctx,
	}
	var (
		sel   []core.CandMeta
		stats core.Stats
		deg   *dshard.Degradation
	)
	if cfg.partial {
		sel, stats, deg, err = di.coord.SearchPartial(spec, copts)
	} else {
		sel, stats, err = di.coord.Search(spec, copts)
	}
	if err != nil {
		return nil, SearchInfo{}, err
	}
	rs := make([]core.Result, 0, len(sel))
	for _, c := range sel {
		rs = append(rs, core.Result{Doc: c.Doc, URI: base.URIOf(c.Doc), Lower: c.Lower, Upper: c.Upper})
	}
	info := mapSearchInfo(stats)
	if deg != nil {
		info.Degraded = true
		info.ServedShards = deg.Served
	}
	return mapResults(base, rs), info, nil
}

// SetProxCache is a no-op: proximity exploration (and its caching)
// belongs to the worker processes.
func (di *DistributedInstance) SetProxCache(*ProxCache) {}

// SetSearchMetrics attaches (or with nil, detaches) the instrument
// bundle fed by subsequent coordinated searches.
func (di *DistributedInstance) SetSearchMetrics(m *SearchMetrics) { di.obsm.Store(m) }

// AttachRegistry wires the coordinator's wire instruments (per-endpoint
// RPC round-trip time and bytes) and search counters into r. The serving
// layer calls this once after opening, before the instance takes
// traffic.
func (di *DistributedInstance) AttachRegistry(r *obs.Registry) { di.coord.AttachRegistry(r) }

// WarmProximity is a no-op for the same reason.
func (di *DistributedInstance) WarmProximity(string, float64, float64, int) (int, bool) {
	return 0, false
}

// MappedBytes reports the manifest mapping backing the coordinator.
func (di *DistributedInstance) MappedBytes() int64 { return di.man.MappedBytes() }

// Close stops the membership probes and releases the manifest mapping.
func (di *DistributedInstance) Close() error {
	di.cancel()
	return di.man.Close()
}

// DistributedStats exposes the coordinator's aggregated per-worker view
// (picked up by the serving layer's /stats).
func (di *DistributedInstance) DistributedStats() any { return di.coord.Stats() }
