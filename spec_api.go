package s3

import (
	"fmt"
	"io"

	"s3/internal/graph"
)

// EncodeSpec serialises everything the builder has accumulated so far —
// users, social edges, documents, posts, comments, tags and ontology — as
// a self-contained binary specification. The spec can be stored, shipped,
// merged into other applications (R6 interoperability) and rebuilt with
// BuildFromSpec.
func (b *Builder) EncodeSpec(w io.Writer) error {
	spec := b.b.Spec()
	return spec.Encode(w)
}

// BuildFromSpec decodes a specification written by EncodeSpec and builds
// it into a queryable instance using the given text pipeline. The entire
// spec is re-validated during the build.
func BuildFromSpec(r io.Reader, lang Lang) (*Instance, error) {
	spec, err := graph.DecodeSpec(r)
	if err != nil {
		return nil, err
	}
	in, err := graph.BuildSpec(*spec, lang.analyzer())
	if err != nil {
		return nil, fmt.Errorf("s3: rebuilding spec: %w", err)
	}
	return newInstance(in), nil
}
