package s3_test

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"s3"
	"s3/internal/datagen"
)

// buildTestInstance goes through the public facade the way the CLIs do.
func buildTestInstance(t testing.TB, users, tweets int, seed int64) *s3.Instance {
	t.Helper()
	o := datagen.DefaultTwitterOptions()
	o.Users, o.Tweets, o.Seed = users, tweets, seed
	spec, _ := datagen.Twitter(o)
	var buf bytes.Buffer
	if err := spec.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	inst, err := s3.BuildFromSpec(&buf, s3.Raw)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// sampleQueries returns a few (seeker, keyword) pairs that produce
// results.
func sampleQueries(t testing.TB, inst *s3.Instance, max int) [][2]string {
	t.Helper()
	var out [][2]string
	for u := 0; u < 80 && len(out) < max; u++ {
		seeker := fmt.Sprintf("tw:u%d", u)
		if !inst.HasUser(seeker) {
			continue
		}
		for _, kw := range []string{"#h1", "#h2", "#h3", "#h5", "#h8"} {
			if rs, err := inst.Search(seeker, []string{kw}, s3.WithK(5)); err == nil && len(rs) > 0 {
				out = append(out, [2]string{seeker, kw})
				break
			}
		}
	}
	if len(out) == 0 {
		t.Fatal("no usable queries on test instance")
	}
	return out
}

// sameResults compares result lists bit for bit.
func sameResults(a, b []s3.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].URI != b[i].URI || a[i].Document != b[i].Document ||
			math.Float64bits(a[i].Lower) != math.Float64bits(b[i].Lower) ||
			math.Float64bits(a[i].Upper) != math.Float64bits(b[i].Upper) {
			return false
		}
	}
	return true
}

// TestShardByMatchesInstance checks the in-memory sharding facade: for
// several shard counts the sharded answers are byte-identical to the
// plain instance's, and the shard layout accounting adds up.
func TestShardByMatchesInstance(t *testing.T) {
	inst := buildTestInstance(t, 60, 240, 3)
	queries := sampleQueries(t, inst, 5)

	for _, n := range []int{1, 2, 4, 7} {
		si, err := inst.ShardBy(n)
		if err != nil {
			t.Fatalf("ShardBy(%d): %v", n, err)
		}
		if si.NumShards() != n {
			t.Fatalf("ShardBy(%d) produced %d shards", n, si.NumShards())
		}
		if si.Stats() != inst.Stats() {
			t.Errorf("n=%d: sharded stats diverge", n)
		}
		docs, comps := 0, 0
		for _, sh := range si.Shards() {
			docs += sh.Documents
			comps += sh.Components
		}
		if docs != inst.Stats().Documents || comps != inst.Stats().Components {
			t.Errorf("n=%d: shards hold %d docs / %d comps, instance %d / %d",
				n, docs, comps, inst.Stats().Documents, inst.Stats().Components)
		}
		for _, q := range queries {
			want, wantInfo, err1 := inst.SearchInfoed(q[0], []string{q[1]}, s3.WithK(5))
			got, gotInfo, err2 := si.SearchInfoed(q[0], []string{q[1]}, s3.WithK(5))
			if err1 != nil || err2 != nil {
				t.Fatalf("n=%d %s/%s: %v / %v", n, q[0], q[1], err1, err2)
			}
			if !sameResults(want, got) {
				t.Errorf("n=%d %s/%s: sharded answer diverges\nwant %+v\ngot  %+v", n, q[0], q[1], want, got)
			}
			if wantInfo.Exact != gotInfo.Exact || wantInfo.Iterations != gotInfo.Iterations {
				t.Errorf("n=%d %s/%s: info diverges: %+v vs %+v", n, q[0], q[1], wantInfo, gotInfo)
			}
		}
		if err := func() error {
			_, err := si.Search("no-such-user", []string{"#h1"})
			return err
		}(); err == nil {
			t.Errorf("n=%d: unknown seeker accepted", n)
		}
	}

	// Per-shard search counters: after the queries above, every fanned-out
	// search is accounted for somewhere.
	si, err := inst.ShardBy(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		if _, err := si.Search(q[0], []string{q[1]}, s3.WithK(5)); err != nil {
			t.Fatal(err)
		}
	}
	total := uint64(0)
	for _, sh := range si.Shards() {
		total += sh.Searches
	}
	if total == 0 {
		t.Error("no shard counted any search")
	}
}

// TestShardByMoreShardsThanComponents covers the over-partitioned case:
// some shards own no components at all, both in memory and through the
// file round trip.
func TestShardByMoreShardsThanComponents(t *testing.T) {
	b := s3.NewBuilder(s3.Raw)
	for _, u := range []string{"u:a", "u:b"} {
		if err := b.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddSocial("u:a", "u:b", 0.9); err != nil {
		t.Fatal(err)
	}
	// Two documents → two components.
	for i, text := range []string{"alpha beta", "beta gamma"} {
		uri := fmt.Sprintf("d:%d", i)
		if err := b.AddDocumentText(uri, "post", text); err != nil {
			t.Fatal(err)
		}
		if err := b.AddPost(uri, "u:b"); err != nil {
			t.Fatal(err)
		}
	}
	inst, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if inst.Stats().Components >= 5 {
		t.Fatalf("test premise broken: %d components", inst.Stats().Components)
	}

	si, err := inst.ShardBy(5)
	if err != nil {
		t.Fatalf("ShardBy with more shards than components: %v", err)
	}
	want, err1 := inst.Search("u:a", []string{"beta"}, s3.WithK(3))
	got, err2 := si.Search("u:a", []string{"beta"}, s3.WithK(3))
	if err1 != nil || err2 != nil {
		t.Fatalf("search: %v / %v", err1, err2)
	}
	if len(want) == 0 || !sameResults(want, got) {
		t.Fatalf("over-partitioned answers diverge: %+v vs %+v", want, got)
	}

	manifest := filepath.Join(t.TempDir(), "tiny.set")
	if _, err := inst.WriteShardSetFiles(manifest, 5); err != nil {
		t.Fatal(err)
	}
	loaded, err := s3.OpenShardSet(manifest, s3.LoadCopy)
	if err != nil {
		t.Fatalf("over-partitioned shard set did not load back: %v", err)
	}
	got, err = loaded.Search("u:a", []string{"beta"}, s3.WithK(3))
	if err != nil {
		t.Fatal(err)
	}
	if !sameResults(want, got) {
		t.Fatal("loaded over-partitioned answers diverge")
	}
}

// TestShardSetFilesRoundTrip persists a shard set with the public facade
// and reloads it from disk.
func TestShardSetFilesRoundTrip(t *testing.T) {
	inst := buildTestInstance(t, 60, 240, 7)
	queries := sampleQueries(t, inst, 3)
	dir := t.TempDir()
	manifest := filepath.Join(dir, "i1.set")

	paths, err := inst.WriteShardSetFiles(manifest, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("wrote %d shard files, want 4", len(paths))
	}
	for _, p := range paths {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("shard file missing: %v", err)
		}
	}

	si, err := s3.OpenShardSet(manifest, s3.LoadCopy)
	if err != nil {
		t.Fatal(err)
	}
	if si.NumShards() != 4 {
		t.Fatalf("loaded %d shards", si.NumShards())
	}
	for _, q := range queries {
		want, err1 := inst.Search(q[0], []string{q[1]}, s3.WithK(5))
		got, err2 := si.Search(q[0], []string{q[1]}, s3.WithK(5))
		if err1 != nil || err2 != nil {
			t.Fatalf("%s/%s: %v / %v", q[0], q[1], err1, err2)
		}
		if !sameResults(want, got) {
			t.Errorf("%s/%s: loaded shard set diverges", q[0], q[1])
		}
	}
	// Extension and HasUser work off the shared substrate.
	if got, want := si.Extension("#h1"), inst.Extension("#h1"); len(got) != len(want) {
		t.Errorf("extension diverges: %v vs %v", got, want)
	}

	// A deleted shard file must fail the open, not degrade silently.
	if err := os.Remove(paths[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := s3.OpenShardSet(manifest, s3.LoadCopy); err == nil {
		t.Error("shard set opened with a missing shard file")
	}
}
