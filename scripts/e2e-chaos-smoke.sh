#!/bin/sh
# e2e-chaos-smoke: boot a replicated host-grouped topology (2 worker
# processes, each hosting BOTH shards of a 2-shard set) with one host
# reachable only through a faultnet TCP proxy, keep an uncached search
# load running against the coordinator, then repeatedly sever the
# proxied host's live connections and finally SIGKILL the process
# mid-load. Every query must keep answering from the surviving host —
# every shard the dead host carried fails over — and the coordinator
# must record mid-search failovers (s3_coord_failover_total > 0). Run by
# CI next to the observability smoke.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
PIDS=""
cleanup() {
	rm -f "$tmp/run" 2>/dev/null || true
	# SIGKILL, not SIGTERM: workers drain gracefully on SIGTERM and would
	# hold their ports across back-to-back runs of this script.
	for pid in $PIDS; do
		kill -9 "$pid" 2>/dev/null || true
	done
	rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/s3gen" ./cmd/s3gen
go build -o "$tmp/s3serve" ./cmd/s3serve
go build -o "$tmp/s3faultproxy" ./cmd/s3faultproxy
"$tmp/s3gen" -dataset twitter -scale 0.2 -snap "$tmp/i.set" -shards 2 >/dev/null

# Two host-grouped workers, replicas of each other: each hosts both
# shards off one substrate mapping. Host A (18181) is only reachable
# through the proxy, which adds a little per-write latency so that
# connection kills land while rounds are in flight.
"$tmp/s3serve" -shardset "$tmp/i.set" -shards-of 0,1 -addr 127.0.0.1:18181 2>"$tmp/w0.log" &
W0=$!
PIDS="$PIDS $W0"
"$tmp/s3serve" -shardset "$tmp/i.set" -shards-of 0,1 -addr 127.0.0.1:18182 2>"$tmp/w1.log" &
PIDS="$PIDS $!"
"$tmp/s3faultproxy" -listen 127.0.0.1:18191 -target 127.0.0.1:18181 -latency-ms 2 2>"$tmp/p.log" &
PROXY=$!
PIDS="$PIDS $PROXY"
"$tmp/s3serve" -shardset "$tmp/i.set" -coordinator \
	-worker-urls http://127.0.0.1:18191,http://127.0.0.1:18182 \
	-addr 127.0.0.1:18180 2>"$tmp/c.log" &
PIDS="$PIDS $!"

wait_healthy() {
	i=0
	while ! curl -sf "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "e2e-chaos-smoke: port $1 never became healthy" >&2
			cat "$tmp"/*.log >&2
			exit 1
		fi
		sleep 0.1
	done
}
wait_healthy 18182
wait_healthy 18191 # host A through the proxy
wait_healthy 18180

# Find a query that answers; no_cache keeps every repetition on the
# engine path (a cache hit would never touch the workers). The sweep
# retries for a while: worker membership lands on the coordinator's
# probe loop (5s interval), which may not have run yet.
body=""
attempt=0
while [ -z "$body" ]; do
	for u in 0 1 2 3 4 5 6 7 8 9 10 11 12; do
		for kw in '#h1' '#h2' '#h3' '#h5'; do
			probe=$(printf '{"seeker":"tw:u%s","keywords":["%s"],"k":5,"no_cache":true}' "$u" "$kw")
			if curl -sf -X POST http://127.0.0.1:18180/search -d "$probe" >/dev/null 2>&1; then
				body=$probe
				break 2
			fi
		done
	done
	if [ -z "$body" ]; then
		attempt=$((attempt + 1))
		if [ "$attempt" -gt 30 ]; then
			echo "e2e-chaos-smoke: no probe query succeeded" >&2
			cat "$tmp"/*.log >&2
			exit 1
		fi
		sleep 0.5
	fi
done

# Background load: run the query continuously, recording any failure.
touch "$tmp/run"
(
	n=0
	while [ -f "$tmp/run" ]; do
		if ! curl -sf -X POST http://127.0.0.1:18180/search -d "$body" >/dev/null 2>&1; then
			echo "query $n failed" >>"$tmp/loadfail"
		fi
		n=$((n + 1))
	done
	echo "$n" >"$tmp/count"
) &
LOAD=$!

# Chaos: sever the proxied worker's live connections a few times, then
# kill the process outright while the load keeps running.
i=0
while [ "$i" -lt 10 ]; do
	kill -USR1 "$PROXY" 2>/dev/null || true
	i=$((i + 1))
	sleep 0.2
done
kill -9 "$W0" 2>/dev/null || true
sleep 1

# The coordinator must have recovered searches mid-flight.
failovers=0
i=0
while [ "$i" -lt 50 ]; do
	failovers=$(curl -sf http://127.0.0.1:18180/metrics |
		sed -n 's/^s3_coord_failover_total \([0-9][0-9]*\)$/\1/p')
	[ -n "$failovers" ] && [ "$failovers" -gt 0 ] && break
	i=$((i + 1))
	sleep 0.2
done

rm -f "$tmp/run"
wait "$LOAD" 2>/dev/null || true

if [ -s "$tmp/loadfail" ]; then
	echo "e2e-chaos-smoke: searches failed during chaos:" >&2
	cat "$tmp/loadfail" >&2
	cat "$tmp/c.log" >&2
	exit 1
fi
count=$(cat "$tmp/count" 2>/dev/null || echo 0)
if [ "$count" -lt 20 ]; then
	echo "e2e-chaos-smoke: load loop only ran $count queries" >&2
	exit 1
fi
if [ -z "$failovers" ] || [ "$failovers" -eq 0 ]; then
	echo "e2e-chaos-smoke: no mid-search failovers recorded (s3_coord_failover_total=$failovers)" >&2
	cat "$tmp/c.log" >&2
	exit 1
fi

# The fleet still answers every shard with host A gone for good.
curl -sf -X POST http://127.0.0.1:18180/search -d "$body" >/dev/null ||
	{ echo "e2e-chaos-smoke: search failed after host A was killed" >&2; exit 1; }

echo "e2e-chaos-smoke: $count queries survived connection kills + multi-shard host SIGKILL ($failovers failovers)"
