#!/bin/sh
# metrics-lint: every metric name registered anywhere in the serving code
# must be documented in README.md's Observability catalogue. Registered
# names are found by grepping for the "s3_..." string literals passed to
# the obs registry in non-test Go files.
set -eu
cd "$(dirname "$0")/.."

names=$(grep -rhoE '"s3_[a-z0-9_]+"' --include='*.go' --exclude='*_test.go' internal cmd ./*.go 2>/dev/null |
	tr -d '"' | sort -u)
if [ -z "$names" ]; then
	echo "metrics-lint: found no registered metric names — grep pattern broken?" >&2
	exit 1
fi

missing=0
for name in $names; do
	if ! grep -q "$name" README.md; then
		echo "metrics-lint: $name is registered but not documented in README.md" >&2
		missing=1
	fi
done
if [ "$missing" -ne 0 ]; then
	exit 1
fi
echo "metrics-lint: $(echo "$names" | wc -l) metric names all documented"
