#!/bin/sh
# e2e-obs-smoke: boot the full distributed topology (2 host-grouped
# workers serving 2 shards each + a coordinator, plus a pprof debug
# listener) from the built binaries and assert the observability surface
# actually serves: /metrics parses on every process, POST /search?trace=1
# returns a stitched trace, /debug/traces retains it, and /debug/pprof
# answers on the debug listener. Run by CI next to the benchmark smoke.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
W0=""
W1=""
C=""
cleanup() {
	for pid in $W0 $W1 $C; do
		kill "$pid" 2>/dev/null || true
	done
	rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/s3gen" ./cmd/s3gen
go build -o "$tmp/s3serve" ./cmd/s3serve
"$tmp/s3gen" -dataset twitter -scale 0.2 -snap "$tmp/i.set" -shards 4 >/dev/null

"$tmp/s3serve" -shardset "$tmp/i.set" -shards-of 0,2 -addr 127.0.0.1:18081 2>"$tmp/w0.log" &
W0=$!
"$tmp/s3serve" -shardset "$tmp/i.set" -shards-of 1,3 -addr 127.0.0.1:18082 2>"$tmp/w1.log" &
W1=$!
"$tmp/s3serve" -shardset "$tmp/i.set" -coordinator \
	-worker-urls http://127.0.0.1:18081,http://127.0.0.1:18082 \
	-addr 127.0.0.1:18080 -debug-addr 127.0.0.1:18079 -slowlog-ms 1 2>"$tmp/c.log" &
C=$!

wait_healthy() {
	i=0
	while ! curl -sf "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "e2e-obs-smoke: port $1 never became healthy" >&2
			cat "$tmp"/*.log >&2
			exit 1
		fi
		sleep 0.1
	done
}
wait_healthy 18081
wait_healthy 18082
wait_healthy 18080

# A traced search: probe generated seekers/keywords until one answers.
resp=""
for u in 0 1 2 3 4 5 6 7 8 9 10 11 12; do
	for kw in '#h1' '#h2' '#h3' '#h5'; do
		body=$(printf '{"seeker":"tw:u%s","keywords":["%s"],"k":5}' "$u" "$kw")
		if out=$(curl -sf -X POST "http://127.0.0.1:18080/search?trace=1" -d "$body"); then
			resp=$out
			break 2
		fi
	done
done
if [ -z "$resp" ]; then
	echo "e2e-obs-smoke: no probe query succeeded" >&2
	exit 1
fi
trace_id=$(printf '%s' "$resp" | sed -n 's/.*"trace_id":"\([0-9a-f]\{16\}\)".*/\1/p')
if [ -z "$trace_id" ]; then
	echo "e2e-obs-smoke: traced search returned no trace_id: $resp" >&2
	exit 1
fi
if ! printf '%s' "$resp" | grep -q '"name":"exec.round"'; then
	echo "e2e-obs-smoke: trace carries no worker-side spans: $resp" >&2
	exit 1
fi

# The trace is retained on the coordinator and (after the async session
# close) propagated to the workers' rings under the same id.
curl -sf http://127.0.0.1:18080/debug/traces | grep -q "$trace_id" ||
	{ echo "e2e-obs-smoke: coordinator ring lost trace $trace_id" >&2; exit 1; }
i=0
while ! curl -sf http://127.0.0.1:18081/debug/traces | grep -q "$trace_id"; do
	i=$((i + 1))
	if [ "$i" -gt 50 ]; then
		echo "e2e-obs-smoke: worker ring never saw trace $trace_id" >&2
		exit 1
	fi
	sleep 0.1
done

# /metrics serves on all three processes with the mode-specific families.
curl -sf http://127.0.0.1:18080/metrics | grep -q '^s3_coord_rpc_seconds_count{endpoint="round"}' ||
	{ echo "e2e-obs-smoke: coordinator /metrics missing round RPC histogram" >&2; exit 1; }
# The batched rounds endpoint actually carried the search: the batch-size
# histogram must have observed at least one batch.
batches=$(curl -sf http://127.0.0.1:18080/metrics | sed -n 's/^s3_coord_round_batch_count \([0-9]*\)$/\1/p')
if [ -z "$batches" ] || [ "$batches" -eq 0 ]; then
	echo "e2e-obs-smoke: no batched rounds observed (s3_coord_round_batch_count=$batches)" >&2
	exit 1
fi
curl -sf http://127.0.0.1:18080/metrics | grep -q '^s3_coord_spec_issued_total' ||
	{ echo "e2e-obs-smoke: coordinator /metrics missing speculation counters" >&2; exit 1; }
curl -sf http://127.0.0.1:18081/metrics | grep -q '^s3_worker_warm_resumes_total' ||
	{ echo "e2e-obs-smoke: worker /metrics missing warm-resume counter" >&2; exit 1; }
curl -sf http://127.0.0.1:18080/metrics | grep -q '^s3_search_round_seconds_count' ||
	{ echo "e2e-obs-smoke: coordinator /metrics missing per-round latency" >&2; exit 1; }
curl -sf http://127.0.0.1:18081/metrics | grep -q '^s3_shard_rpc_seconds_count{endpoint="round"}' ||
	{ echo "e2e-obs-smoke: worker /metrics missing shard RPC histogram" >&2; exit 1; }
curl -sf http://127.0.0.1:18082/metrics | grep -q '^s3_worker_searches_total' ||
	{ echo "e2e-obs-smoke: worker /metrics missing search counter" >&2; exit 1; }
# Host grouping actually engaged: the coordinator opened host sessions
# spanning both co-hosted shards, and the workers stepped one shared
# iterator per round (steps > 0 proves the proto-4 path executed).
sessions=$(curl -sf http://127.0.0.1:18080/metrics | sed -n 's/^s3_coord_host_sessions_total \([0-9]*\)$/\1/p')
if [ -z "$sessions" ] || [ "$sessions" -eq 0 ]; then
	echo "e2e-obs-smoke: no host-grouped sessions recorded (s3_coord_host_sessions_total=$sessions)" >&2
	exit 1
fi
curl -sf http://127.0.0.1:18080/metrics | grep -q '^s3_coord_host_rpc_shards_bucket' ||
	{ echo "e2e-obs-smoke: coordinator /metrics missing host fan-in histogram" >&2; exit 1; }
steps=$(curl -sf http://127.0.0.1:18081/metrics | sed -n 's/^s3_worker_iter_steps_total \([0-9]*\)$/\1/p')
if [ -z "$steps" ] || [ "$steps" -eq 0 ]; then
	echo "e2e-obs-smoke: worker executed no shared-iterator steps (s3_worker_iter_steps_total=$steps)" >&2
	exit 1
fi

# The slow-query log (threshold 1ms may or may not fire on loopback) must
# at least leave the counter scrapeable, and pprof answers on the debug
# listener.
curl -sf http://127.0.0.1:18080/metrics | grep -q '^s3_slowlog_emitted_total' ||
	{ echo "e2e-obs-smoke: slowlog counter missing" >&2; exit 1; }
curl -sf http://127.0.0.1:18079/debug/pprof/cmdline >/dev/null ||
	{ echo "e2e-obs-smoke: pprof debug listener not serving" >&2; exit 1; }

echo "e2e-obs-smoke: traced distributed search + 3x /metrics + rings + pprof all serving"
