package s3

import (
	"sync/atomic"

	"s3/internal/proxcache"
	"s3/internal/score"
)

// ProxCache is a seeker-proximity checkpoint cache shared across searches
// of one instance: repeated queries from the same seeker (and damping
// parameters) resume the social-graph exploration from the deepest cached
// frontier instead of re-propagating it from scratch, with answers
// byte-identical to uncached searches. Attach it with SetProxCache; it is
// safe for concurrent use and sized by memory, evicting least-recently
// used seekers when the byte budget is exceeded.
type ProxCache struct {
	c *proxcache.Cache
	// warmed counts WarmProximity seeds performed through this cache.
	warmed atomic.Uint64
}

// NewProxCache returns a proximity cache budgeted to maxBytes of
// checkpoint state.
func NewProxCache(maxBytes int64) *ProxCache {
	return &ProxCache{c: proxcache.New(maxBytes)}
}

// ProxCacheStats is a point-in-time snapshot of a ProxCache.
type ProxCacheStats struct {
	// Entries and Bytes describe the current content; MaxBytes the budget.
	Entries  int
	Bytes    int64
	MaxBytes int64
	// Hits and Misses count checkpoint lookups by searches; Evictions
	// counts entries dropped for the byte budget; Stores counts accepted
	// publications (insertions and deepenings); Rejected counts
	// publications dropped by the deepen-only rule or the budget; Warmed
	// counts explicit WarmProximity seeds.
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Stores    uint64
	Rejected  uint64
	Warmed    uint64
}

// Stats returns the cache's current counters.
func (p *ProxCache) Stats() ProxCacheStats {
	s := p.c.Stats()
	return ProxCacheStats{
		Entries:   s.Entries,
		Bytes:     s.Bytes,
		MaxBytes:  s.MaxBytes,
		Hits:      s.Hits,
		Misses:    s.Misses,
		Evictions: s.Evictions,
		Stores:    s.Stores,
		Rejected:  s.Rejected,
		Warmed:    p.warmed.Load(),
	}
}

// Purge drops every cached checkpoint (lifetime counters are kept).
// Checkpoints are bound to a loaded instance, so purge after swapping the
// served instance; stale entries are also detected and dropped lazily.
func (p *ProxCache) Purge() { p.c.Purge() }

// SetProxCache attaches (or, with nil, detaches) a proximity cache.
// Subsequent searches consult and feed it. Attaching also binds the cache
// to this instance: a cache serves one instance generation at a time, and
// publications from searches still in flight against a previously bound
// instance are dropped.
func (i *Instance) SetProxCache(pc *ProxCache) {
	if pc != nil {
		pc.c.Bind(i.in)
	}
	i.prox.Store(pc)
}

// SetProxCache attaches (or, with nil, detaches) a proximity cache shared
// by the shard set's fan-out searches; see Instance.SetProxCache for the
// binding semantics.
func (si *ShardedInstance) SetProxCache(pc *ProxCache) {
	if pc != nil {
		// Fan-out searches run their iterator over shard 0's projection;
		// that is the instance pointer checkpoints carry.
		pc.c.Bind(si.shards[0])
	}
	si.prox.Store(pc)
}

// WarmProximity pre-explores a seeker's social neighbourhood to maxDepth
// under the given damping factors and publishes the frontier into the
// attached proximity cache, so the seeker's next search starts warm. It
// returns the depth now covered (0 when no cache is attached, the seeker
// is unknown, or the parameters are invalid) and whether this call
// performed a seed — warming a key the cache already covers is a
// reported no-op.
func (i *Instance) WarmProximity(seekerURI string, gamma, eta float64, maxDepth int) (int, bool) {
	pc := i.prox.Load()
	if pc == nil {
		return 0, false
	}
	n, ok := i.in.NIDOf(seekerURI)
	if !ok {
		return 0, false
	}
	d, seeded := i.eng.WarmProximity(pc.c, n, score.Params{Gamma: gamma, Eta: eta}, maxDepth)
	if seeded {
		pc.warmed.Add(1)
	}
	return d, seeded
}

// WarmProximity pre-explores a seeker over the shard set's shared
// substrate; see Instance.WarmProximity.
func (si *ShardedInstance) WarmProximity(seekerURI string, gamma, eta float64, maxDepth int) (int, bool) {
	pc := si.prox.Load()
	if pc == nil {
		return 0, false
	}
	n, ok := si.base.NIDOf(seekerURI)
	if !ok {
		return 0, false
	}
	d, seeded := si.seng.WarmProximity(pc.c, n, score.Params{Gamma: gamma, Eta: eta}, maxDepth)
	if seeded {
		pc.warmed.Add(1)
	}
	return d, seeded
}
