package s3_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"s3"
	"s3/internal/datagen"
	"s3/internal/doc"
	"s3/internal/graph"
	"s3/internal/snap"
)

// writeSnapshotTo persists the instance to a fresh snapshot file and
// returns its path.
func writeSnapshotTo(t testing.TB, inst *s3.Instance, dir, name string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// specQueries samples (seeker, keyword) pairs straight from a generated
// spec, so datasets with arbitrary URI schemes can be probed.
func specQueries(t testing.TB, spec graph.Spec, inst *s3.Instance, max int) [][2]string {
	t.Helper()
	var words []string
	var collect func(n *doc.Node)
	collect = func(n *doc.Node) {
		for _, w := range append(strings.Fields(n.Text), n.Keywords...) {
			if len(words) < 64 {
				words = append(words, w)
			}
		}
		for _, c := range n.Children {
			collect(c)
		}
	}
	for _, d := range spec.Docs {
		collect(d)
	}
	var out [][2]string
	for _, u := range spec.Users {
		if len(out) >= max {
			break
		}
		for _, w := range words {
			if rs, err := inst.Search(u, []string{w}, s3.WithK(5)); err == nil && len(rs) > 0 {
				out = append(out, [2]string{u, w})
				break
			}
		}
	}
	if len(out) == 0 {
		t.Fatal("no usable queries sampled from spec")
	}
	return out
}

// battery runs every sample query in several parameterisations and fails
// on any difference from want (bit-exact scores, same order).
func battery(t *testing.T, label string, want, got s3.Queryable, queries [][2]string) {
	t.Helper()
	for _, q := range queries {
		for _, opts := range [][]s3.Option{
			{s3.WithK(5)},
			{s3.WithK(3), s3.WithGamma(4)},
			{s3.WithK(10), s3.WithEta(0.5)},
		} {
			w, err1 := want.Search(q[0], []string{q[1]}, opts...)
			g, err2 := got.Search(q[0], []string{q[1]}, opts...)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s: search(%s, %s): %v / %v", label, q[0], q[1], err1, err2)
			}
			if !sameResults(w, g) {
				t.Fatalf("%s: search(%s, %s) diverges:\nwant %+v\ngot  %+v", label, q[0], q[1], w, g)
			}
		}
	}
}

// TestMmapSnapshotMatchesCopy is the core property of the zero-copy load:
// across generated datasets, a memory-mapped instance answers every query
// byte-identically (documents, order, score-interval bits) to the
// copy-loaded instance of the same file, agrees on statistics and
// extensions, and re-serialises to the identical canonical bytes.
func TestMmapSnapshotMatchesCopy(t *testing.T) {
	type dataset struct {
		name    string
		inst    *s3.Instance
		queries [][2]string
	}
	var datasets []dataset
	for _, seed := range []int64{1, 7} {
		inst := buildTestInstance(t, 70, 280, seed)
		datasets = append(datasets, dataset{
			name:    fmt.Sprintf("twitter-%d", seed),
			inst:    inst,
			queries: sampleQueries(t, inst, 6),
		})
	}
	{
		o := datagen.DefaultVodkasterOptions()
		o.Users, o.Movies = 50, 40
		spec := datagen.Vodkaster(o)
		var buf bytes.Buffer
		if err := spec.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		inst, err := s3.BuildFromSpec(&buf, s3.Raw)
		if err != nil {
			t.Fatal(err)
		}
		datasets = append(datasets, dataset{name: "vodkaster", inst: inst, queries: specQueries(t, spec, inst, 4)})
	}

	for _, d := range datasets {
		t.Run(d.name, func(t *testing.T) {
			path := writeSnapshotTo(t, d.inst, t.TempDir(), "i.snap")
			copyIn, err := s3.OpenSnapshot(path, s3.LoadCopy)
			if err != nil {
				t.Fatal(err)
			}
			mmapIn, err := s3.OpenSnapshot(path, s3.LoadMmap)
			if err != nil {
				t.Fatal(err)
			}
			defer mmapIn.Close()
			if copyIn.MappedBytes() != 0 {
				t.Errorf("copy instance reports %d mapped bytes", copyIn.MappedBytes())
			}
			if mmapIn.MappedBytes() == 0 {
				t.Error("mmap instance reports no mapped bytes")
			}
			if copyIn.Stats() != mmapIn.Stats() {
				t.Errorf("stats diverge: %+v vs %+v", copyIn.Stats(), mmapIn.Stats())
			}

			queries := d.queries
			battery(t, "mmap-vs-copy", copyIn, mmapIn, queries)
			for _, q := range queries {
				w := copyIn.Extension(q[1])
				g := mmapIn.Extension(q[1])
				if fmt.Sprint(w) != fmt.Sprint(g) {
					t.Errorf("extension(%s) diverges: %v vs %v", q[1], w, g)
				}
			}

			// The mapped instance must re-serialise to the identical
			// canonical bytes.
			orig, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var again bytes.Buffer
			if err := mmapIn.WriteSnapshot(&again); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(orig, again.Bytes()) {
				t.Errorf("mapped instance re-serialises to %d bytes, file has %d (not canonical)", again.Len(), len(orig))
			}
		})
	}
}

// TestMmapShardSetMatchesCopy extends the property across component
// sharding: for shard counts 1, 2 and 4, the mmap-loaded shard set
// answers byte-identically to the copy-loaded one and to the unsharded
// source instance.
func TestMmapShardSetMatchesCopy(t *testing.T) {
	inst := buildTestInstance(t, 70, 280, 3)
	queries := sampleQueries(t, inst, 5)
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			manifest := filepath.Join(t.TempDir(), "i.set")
			if _, err := inst.WriteShardSetFiles(manifest, shards); err != nil {
				t.Fatal(err)
			}
			copySet, err := s3.OpenShardSet(manifest, s3.LoadCopy)
			if err != nil {
				t.Fatal(err)
			}
			mmapSet, err := s3.OpenShardSet(manifest, s3.LoadMmap)
			if err != nil {
				t.Fatal(err)
			}
			defer mmapSet.Close()
			if mmapSet.MappedBytes() == 0 {
				t.Error("mmap shard set reports no mapped bytes")
			}
			battery(t, "sharded-mmap-vs-copy", copySet, mmapSet, queries)
			battery(t, "sharded-mmap-vs-source", inst, mmapSet, queries)
		})
	}
}

// TestMmapSurvivesUnlink pins the operational property behind atomic
// snapshot replacement: the mapping keeps the old inode alive, so the
// file can be unlinked (or renamed over) while a mapped instance serves.
func TestMmapSurvivesUnlink(t *testing.T) {
	inst := buildTestInstance(t, 60, 240, 5)
	path := writeSnapshotTo(t, inst, t.TempDir(), "i.snap")
	queries := sampleQueries(t, inst, 3)

	mmapIn, err := s3.OpenSnapshot(path, s3.LoadMmap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	battery(t, "after-unlink", inst, mmapIn, queries)
	if err := mmapIn.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mmapIn.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestMmapLegacyV1FallsBack checks the compatibility matrix: a version-1
// varint snapshot opened with LoadMmap loads through the copying decoder
// (no mapping retained) and answers identically.
func TestMmapLegacyV1FallsBack(t *testing.T) {
	inst := buildTestInstance(t, 60, 240, 9)
	queries := sampleQueries(t, inst, 3)

	// Reach the internal (instance, index) pair by round-tripping the
	// facade snapshot, then re-encode it in the legacy format.
	var buf bytes.Buffer
	if err := inst.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	gin, ix, err := snap.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "v1.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.WriteLegacy(f, gin, ix); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	loaded, err := s3.OpenSnapshot(path, s3.LoadMmap)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if loaded.MappedBytes() != 0 {
		t.Errorf("v1 snapshot reports %d mapped bytes; want copy fallback", loaded.MappedBytes())
	}
	battery(t, "v1-fallback", inst, loaded, queries)
}
