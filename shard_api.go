package s3

import (
	"fmt"
	"io"
	"sync/atomic"

	"s3/internal/core"
	"s3/internal/graph"
	"s3/internal/index"
	"s3/internal/snap"
)

// Queryable is the serving surface shared by a single Instance and a
// component-sharded ShardedInstance: everything the query server needs to
// answer searches, report statistics and describe its shard layout. A
// plain Instance is the degenerate one-shard case.
type Queryable interface {
	// HasUser reports whether uri names a user (a valid seeker).
	HasUser(uri string) bool
	// Search runs an S3k top-k search.
	Search(seekerURI string, keywords []string, opts ...Option) ([]Result, error)
	// SearchInfoed is Search returning termination information as well.
	SearchInfoed(seekerURI string, keywords []string, opts ...Option) ([]Result, SearchInfo, error)
	// Extension returns the semantic extension of a keyword.
	Extension(keyword string) []string
	// Stats returns whole-instance statistics.
	Stats() Stats
	// Shards describes the shard layout: one entry per shard with its
	// content counts and lifetime search count.
	Shards() []ShardStat
	// SetProxCache attaches a seeker-proximity checkpoint cache consulted
	// and fed by subsequent searches (nil detaches).
	SetProxCache(*ProxCache)
	// SetSearchMetrics attaches the instrument bundle fed by subsequent
	// searches (nil detaches). Safe while searches are in flight.
	SetSearchMetrics(*SearchMetrics)
	// WarmProximity pre-explores a seeker to maxDepth under (gamma, eta)
	// and seeds the attached proximity cache, returning the covered depth
	// and whether this call actually performed a seed.
	WarmProximity(seekerURI string, gamma, eta float64, maxDepth int) (int, bool)
	// MappedBytes reports how many snapshot bytes back the instance
	// through memory mappings (0 when copy-loaded).
	MappedBytes() int64
	// Close releases the instance's memory mappings, if any. Only call it
	// once no search is executing; idempotent, and a no-op for
	// copy-loaded instances.
	Close() error
}

var (
	_ Queryable = (*Instance)(nil)
	_ Queryable = (*ShardedInstance)(nil)
)

// ShardStat summarises one shard of a Queryable.
type ShardStat struct {
	// Documents, Components and Tags count the shard's content.
	Documents  int
	Components int
	Tags       int
	// Searches counts the queries that fanned out to this shard (for a
	// sharded instance: had a matching component there; for a plain
	// instance: every search).
	Searches uint64
	// Rounds counts the lockstep search rounds that carried candidate
	// work on this shard — with Searches, the load signal a shard
	// rebalancer consumes. A plain instance counts every exploration
	// round of every search (each round carries the whole query's work).
	Rounds uint64
}

// Shards describes a plain instance as a single shard holding everything.
func (i *Instance) Shards() []ShardStat {
	s := i.in.Stats()
	return []ShardStat{{
		Documents:  s.Documents,
		Components: s.Components,
		Tags:       s.Tags,
		Searches:   i.searches.Load(),
		Rounds:     i.rounds.Load(),
	}}
}

// ShardedInstance is a frozen S3 instance partitioned by component into N
// shards sharing one proximity substrate (dictionary, node tables,
// network matrix, ontology). Searches fan out across per-shard engines in
// lockstep and merge per-shard answers by score interval; the result —
// documents, order and score intervals — is identical to searching the
// unsharded instance (see internal/core's sharded engine). It is
// immutable (counters aside) and safe for concurrent searches.
type ShardedInstance struct {
	base   *graph.Instance
	shards []*graph.Instance
	ixs    []*index.Index
	seng   *core.ShardedEngine

	// lifecycle owns the memory mappings behind a LoadMmap shard set.
	lifecycle
	// single short-circuits the one-shard case straight to the plain
	// engine, making an N=1 shard set behaviorally identical to serving
	// the equivalent single snapshot.
	single *core.Engine

	// prox is the optional seeker-proximity checkpoint cache shared by the
	// fan-out searches.
	prox atomic.Pointer[ProxCache]

	// obsm is the optional search-metrics sink shared by the fan-out
	// searches.
	obsm atomic.Pointer[SearchMetrics]
}

// SetSearchMetrics attaches (or with nil, detaches) the instrument
// bundle fed by subsequent searches.
func (si *ShardedInstance) SetSearchMetrics(m *SearchMetrics) { si.obsm.Store(m) }

// ShardBy partitions the instance into n component shards in memory
// (without going through shard-set files): components are spread by
// balanced document count, each shard receives its component projection
// and index slice, and the result searches through the fan-out/merge
// engine. Useful for exploiting multi-core parallelism on one box and for
// testing shard layouts before persisting them.
func (i *Instance) ShardBy(n int) (*ShardedInstance, error) {
	parts, err := graph.PartitionComponents(i.in, n)
	if err != nil {
		return nil, err
	}
	shards := make([]*graph.Instance, n)
	ixs := make([]*index.Index, n)
	for s, comps := range parts {
		proj, err := i.in.ProjectComponents(comps)
		if err != nil {
			return nil, err
		}
		pix, err := i.ix.Project(proj)
		if err != nil {
			return nil, err
		}
		shards[s], ixs[s] = proj, pix
	}
	return newShardedInstance(i.in, shards, ixs)
}

func newShardedInstance(base *graph.Instance, shards []*graph.Instance, ixs []*index.Index) (*ShardedInstance, error) {
	engines := make([]*core.Engine, len(shards))
	for s := range shards {
		engines[s] = core.NewEngine(shards[s], ixs[s])
	}
	seng, err := core.NewShardedEngine(engines)
	if err != nil {
		return nil, err
	}
	si := &ShardedInstance{base: base, shards: shards, ixs: ixs, seng: seng}
	if len(shards) == 1 {
		si.single = engines[0]
	}
	return si, nil
}

// NumShards returns the shard count.
func (si *ShardedInstance) NumShards() int { return len(si.shards) }

// Stats returns the whole-instance statistics (identical to the
// unsharded instance's: the substrate is shared, the shards partition the
// content).
func (si *ShardedInstance) Stats() Stats { return si.base.Stats() }

// HasUser reports whether uri names a user (users are shared substrate,
// so every shard can act for any seeker).
func (si *ShardedInstance) HasUser(uri string) bool {
	n, ok := si.base.NIDOf(uri)
	return ok && si.base.KindOf(n) == graph.KindUser
}

// Extension returns the semantic extension of a keyword (the ontology is
// shared substrate).
func (si *ShardedInstance) Extension(keyword string) []string {
	return extension(si.base, keyword)
}

// Shards describes the shard layout with per-shard content counts and
// fan-out search counts.
func (si *ShardedInstance) Shards() []ShardStat {
	touches := si.seng.ShardTouches()
	rounds := si.seng.ShardRounds()
	out := make([]ShardStat, len(si.shards))
	for s, sh := range si.shards {
		st := sh.Stats()
		out[s] = ShardStat{
			Documents:  st.Documents,
			Components: st.Components,
			Tags:       st.Tags,
			Searches:   touches[s],
			Rounds:     rounds[s],
		}
	}
	return out
}

// Search runs a sharded S3k top-k search; the answer equals the unsharded
// answer.
func (si *ShardedInstance) Search(seekerURI string, keywords []string, opts ...Option) ([]Result, error) {
	rs, _, err := si.SearchInfoed(seekerURI, keywords, opts...)
	return rs, err
}

// SearchInfoed is Search returning termination information as well.
func (si *ShardedInstance) SearchInfoed(seekerURI string, keywords []string, opts ...Option) ([]Result, SearchInfo, error) {
	cfg := searchConfig{opts: core.DefaultOptions()}
	for _, o := range opts {
		o(&cfg)
	}
	seeker, ok := si.base.NIDOf(seekerURI)
	if !ok {
		return nil, SearchInfo{}, fmt.Errorf("s3: unknown seeker %q", seekerURI)
	}
	if pc := si.prox.Load(); pc != nil {
		cfg.opts.ProxCache = pc.c
	}
	cfg.opts.Obs = si.obsm.Load()
	var (
		rs    []core.Result
		stats core.Stats
		err   error
	)
	if si.single != nil {
		si.countSingle()
		rs, stats, err = si.single.Search(seeker, keywords, cfg.opts)
		if err == nil {
			// Keep the short-circuited path's round counter consistent with
			// the fan-out path: every exploration round carried the work.
			si.seng.CountRounds(0, uint64(stats.Iterations))
		}
	} else {
		rs, stats, err = si.seng.Search(seeker, keywords, cfg.opts)
	}
	if err != nil {
		return nil, SearchInfo{}, err
	}
	return mapResults(si.base, rs), mapSearchInfo(stats), nil
}

// countSingle keeps the one-shard fan-out counter meaningful on the
// short-circuited path.
func (si *ShardedInstance) countSingle() {
	// The sharded engine exposes no increment; route the count through a
	// one-entry search so ShardTouches stays the source of truth.
	si.seng.CountTouch(0)
}

// WriteShardSetFiles partitions the instance into n shards and persists
// them as a shard set: the manifest at manifestPath (shared substrate +
// layout) and one file per shard next to it, named
// "<manifest base name>.shard-<i>". It returns the shard file paths.
func (i *Instance) WriteShardSetFiles(manifestPath string, n int) ([]string, error) {
	parts, err := graph.PartitionComponents(i.in, n)
	if err != nil {
		return nil, err
	}
	return snap.WriteShardSetFiles(manifestPath, i.in, i.ix, parts)
}

// ReadShardSet loads a shard set from readers (manifest first, then the
// shard files in layout order), fully validating the set, and returns the
// fan-out/merge instance (LoadCopy semantics).
func ReadShardSet(manifest io.Reader, shards []io.Reader) (*ShardedInstance, error) {
	set, err := snap.ReadShardSet(manifest, shards)
	if err != nil {
		return nil, err
	}
	return newShardedInstance(set.Base, set.Shards, set.Indexes)
}

// OpenShardSet loads a shard set from disk in the given mode: the
// manifest plus the shard files it names (resolved in the manifest's
// directory). With LoadMmap the shared substrate and every per-shard
// index slice are views into the mapped files; call Close when the
// instance is retired (after in-flight searches finish) to unmap them.
func OpenShardSet(manifestPath string, mode LoadMode) (*ShardedInstance, error) {
	s, err := snap.OpenShardSet(manifestPath, snap.LoadMode(mode))
	if err != nil {
		return nil, err
	}
	si, err := newShardedInstance(s.Set.Base, s.Set.Shards, s.Set.Indexes)
	if err != nil {
		s.Close()
		return nil, err
	}
	si.setMapped(s.MappedBytes(), s.Close)
	return si, nil
}
