// Cold-start benchmarks for the two snapshot load modes: each iteration
// opens the snapshot file from scratch, runs one fixed search and closes
// the instance — time-to-first-search, the number a serving fleet pays on
// every restart, redeploy and hot reload. Compare
// BenchmarkSnapshotOpenCopy (decode into private memory, the
// writer-compatible default) with BenchmarkSnapshotOpenMmap (map the file
// and serve zero-copy views): the mapped open does no per-entry decode at
// all, so the gap grows with instance size.
package s3

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"s3/internal/bench"
	"s3/internal/core"
	"s3/internal/datagen"
	"s3/internal/graph"
	"s3/internal/index"
	"s3/internal/score"
	"s3/internal/snap"
	"s3/internal/text"
)

// The open benchmarks use a serving-scale instance (an order of magnitude
// larger than the query benchmarks'), because cold start is precisely the
// cost that grows with instance size.
var openBench struct {
	once   sync.Once
	err    error
	path   string
	seeker string
	kw     string
}

func openBenchSetup(b *testing.B) (path, seeker, kw string) {
	b.Helper()
	openBench.once.Do(func() {
		o := datagen.DefaultTwitterOptions()
		o.Users, o.Tweets = 4000, 16000
		spec, _ := datagen.Twitter(o)
		in, err := graph.BuildSpec(spec, text.Analyzer{Lang: text.None})
		if err != nil {
			openBench.err = err
			return
		}
		ix := index.Build(in)
		dir, err := os.MkdirTemp("", "s3-openbench")
		if err != nil {
			openBench.err = err
			return
		}
		openBench.path = filepath.Join(dir, "i.snap")
		f, err := os.Create(openBench.path)
		if err != nil {
			openBench.err = err
			return
		}
		if err := snap.Write(f, in, ix); err != nil {
			openBench.err = err
			return
		}
		if err := f.Close(); err != nil {
			openBench.err = err
			return
		}
		// The first search is a bounded any-time probe (see
		// benchmarkSnapshotOpen); pick the first rare single-keyword
		// workload query that yields results under the bound, so the same
		// fixed query serves both load modes deterministically.
		w, err := bench.BuildWorkload(in, bench.WorkloadID{Freq: bench.Rare, L: 1, K: 10}, 16, 42)
		if err != nil {
			openBench.err = err
			return
		}
		eng := core.NewEngine(in, ix)
		opts := core.Options{K: 10, Params: score.Params{Gamma: 4, Eta: 0.8}, MaxIterations: openBenchIterations}
		for _, q := range w.Queries {
			if len(q.Keywords) == 0 {
				continue
			}
			rs, _, err := eng.Search(q.Seeker, q.Keywords, opts)
			if err != nil || len(rs) == 0 {
				continue // the first search must produce results
			}
			openBench.seeker = in.URIOf(q.Seeker)
			openBench.kw = q.Keywords[0]
			break
		}
		if openBench.seeker == "" {
			openBench.err = errNoOpenBenchQuery
		}
	})
	if openBench.err != nil {
		b.Fatal(openBench.err)
	}
	return openBench.path, openBench.seeker, openBench.kw
}

var errNoOpenBenchQuery = errString("openbench: no usable workload query")

type errString string

func (e errString) Error() string { return string(e) }

// openBenchIterations bounds the first search: a full exact search costs
// O(graph exploration) identically in both modes and would drown the
// load-path difference being measured, so the probe runs in the engine's
// any-time mode with a fixed iteration budget — still a real search that
// resolves the seeker (dictionary), extends the keyword (ontology), walks
// postings (index), propagates the frontier (matrix) and scores
// candidates, i.e. it faults in and exercises every section a lazy loader
// could try to defer.
const openBenchIterations = 4

func benchmarkSnapshotOpen(b *testing.B, mode LoadMode) {
	path, seeker, kw := openBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst, err := OpenSnapshot(path, mode)
		if err != nil {
			b.Fatal(err)
		}
		rs, err := inst.Search(seeker, []string{kw},
			WithK(10), WithGamma(4), WithMaxIterations(openBenchIterations))
		if err != nil {
			b.Fatal(err)
		}
		if len(rs) == 0 {
			b.Fatal("first search returned nothing")
		}
		if err := inst.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotOpenCopy measures time-to-first-search for the
// copying load: full decode, private hash structures.
func BenchmarkSnapshotOpenCopy(b *testing.B) { benchmarkSnapshotOpen(b, LoadCopy) }

// BenchmarkSnapshotOpenMmap measures time-to-first-search for the mapped
// load: checksum pass, structural validation, zero-copy views.
func BenchmarkSnapshotOpenMmap(b *testing.B) { benchmarkSnapshotOpen(b, LoadMmap) }
