package s3

import (
	"fmt"
	"io"
	"sync"

	"s3/internal/core"
	"s3/internal/rdf"
)

// This file exposes the semantic side-doors of an instance: beyond top-k
// keyword search, the paper notes (§1) that an S3 instance can be
// exploited "through structured XML and/or RDF queries"; §2.2 derives new
// social edges from such queries (extensibility).

// rdfView lazily materialises the full RDF export of the instance
// (ontology + every S3-model statement, §2.2-§2.4).
type rdfView struct {
	once sync.Once
	g    *rdf.Graph
}

func (i *Instance) rdfGraph() *rdf.Graph {
	i.rdfv.once.Do(func() { i.rdfv.g = i.in.ExportRDF() })
	return i.rdfv.g
}

// QueryRDF evaluates a conjunctive triple-pattern query (the BGP core of
// SPARQL) over the instance's full RDF view. Patterns are strings of
// three whitespace-separated terms; '?'-prefixed terms are variables:
//
//	inst.QueryRDF("?c S3:commentsOn ?d", "?c S3:postedBy ?author")
//
// The result is one map per match, binding variable names to values.
func (i *Instance) QueryRDF(patterns ...string) ([]map[string]string, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("s3: empty RDF query")
	}
	g := i.rdfGraph()
	bindings, err := g.QueryStrings(patterns...)
	if err != nil {
		return nil, err
	}
	out := make([]map[string]string, 0, len(bindings))
	for _, b := range bindings {
		m := make(map[string]string, len(b))
		for v, id := range b {
			m[v] = g.Dict().String(id)
		}
		out = append(out, m)
	}
	return out, nil
}

// WriteRDF serialises the instance's full RDF view in (weighted)
// N-Triples — the interoperability format of requirement R6.
func (i *Instance) WriteRDF(w io.Writer) error {
	return i.rdfGraph().WriteNTriples(w)
}

// SearchContentOnly ranks fragments ignoring the social dimension
// entirely (every proximity fixed at 1): the classical LCA-flavoured XML
// keyword search the S3k score degenerates to (§3.4). Useful as a
// baseline and for seekerless applications.
func (i *Instance) SearchContentOnly(keywords []string, opts ...Option) ([]Result, error) {
	cfg := searchConfig{opts: core.DefaultOptions()}
	for _, o := range opts {
		o(&cfg)
	}
	rs, err := i.eng.SearchContentOnly(keywords, cfg.opts.K, cfg.opts.Params)
	if err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(rs))
	for _, r := range rs {
		docURI := r.URI
		if root := i.in.DocRootOf(r.Doc); root >= 0 {
			docURI = i.in.URIOf(root)
		}
		out = append(out, Result{URI: r.URI, Document: docURI, Lower: r.Lower, Upper: r.Upper})
	}
	return out, nil
}
