package s3

import (
	"bytes"
	"strings"
	"testing"
)

func TestQueryRDF(t *testing.T) {
	inst := buildFigure1(t)

	// Who replied to whose document? (the §2.2 extensibility pattern)
	rows, err := inst.QueryRDF(
		"?c S3:commentsOn ?d",
		"?c S3:postedBy ?author",
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v, want 2 comment relationships", rows)
	}
	authors := map[string]bool{}
	for _, r := range rows {
		authors[r["author"]] = true
	}
	if !authors["u2"] || !authors["u3"] {
		t.Fatalf("authors = %v, want u2 and u3", authors)
	}

	// Class membership via the exported typing triples.
	rows, err = inst.QueryRDF("?u rdf:type S3:user")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("users = %d, want 5", len(rows))
	}

	if _, err := inst.QueryRDF(); err == nil {
		t.Fatal("expected error for empty query")
	}
	if _, err := inst.QueryRDF("too few"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestQueryRDFTagStructure(t *testing.T) {
	inst := buildFigure1(t)
	rows, err := inst.QueryRDF(
		"?a rdf:type S3:relatedTo",
		"?a S3:hasAuthor ?who",
		"?a S3:hasSubject ?frag",
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %v, want the single tag", rows)
	}
	if rows[0]["who"] != "u4" || rows[0]["frag"] != "d0.5.1" {
		t.Fatalf("tag binding = %v", rows[0])
	}
}

func TestWriteRDF(t *testing.T) {
	inst := buildFigure1(t)
	var buf bytes.Buffer
	if err := inst.WriteRDF(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		"<d0.3> <S3:partOf> <d0>",
		"<d1> <repliesTo> <d0>",
		"<a> <S3:hasKeyword>",
		"<u1> <friendOf> <u0> 0.9",
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("export missing %q in:\n%s", frag, out)
		}
	}
}

func TestSearchContentOnlyFacade(t *testing.T) {
	inst := buildFigure1(t)
	// Without the seeker, ranking is purely structural/semantic.
	rs, err := inst.SearchContentOnly([]string{"university"}, WithK(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no content-only results")
	}
	// Every result still carries a document attribution and a closed
	// score interval.
	for _, r := range rs {
		if r.Document == "" || r.Lower != r.Upper {
			t.Fatalf("bad content-only result %+v", r)
		}
	}
}
