// Package s3 is a Go implementation of the S3 data model and the S3k
// top-k search algorithm from "Social, Structured and Semantic Search"
// (Bonaque, Cautis, Goasdoué, Manolescu — EDBT 2016).
//
// S3 models a social application as one weighted graph combining:
//
//   - users and weighted social relationships (and arbitrary
//     application-specific sub-relationships such as "follows");
//   - structured, tree-shaped documents (XML/JSON) whose fragments are
//     first-class search results;
//   - tags, endorsements and comments connecting users to content (and
//     tags to tags);
//   - an RDFS ontology giving keywords semantic extensions
//     (e.g. Ext("degree") ∋ "M.S.").
//
// S3k answers keyword queries with the k best document fragments for a
// given seeker, scoring results by the combination of social proximity
// (an all-paths, Katz-style measure over the normalised network graph),
// document structure (fragment depth damping) and semantics (keyword
// extensions) — and provably returns a correct top-k answer.
//
// # Quick start
//
//	b := s3.NewBuilder(s3.English)
//	b.AddUser("alice")
//	b.AddUser("bob")
//	b.AddSocial("alice", "bob", 0.8)
//	b.AddDocumentText("post1", "post", "My M.S. graduation at the university")
//	b.AddPost("post1", "bob")
//	b.AddTriple("m.s", "rdfs:subClassOf", "degre") // stemmed "degree"
//	inst, _ := b.Build()
//	results, _ := inst.Search("alice", []string{"degree"}, s3.WithK(3))
//
// # Persistence and serving
//
// An instance persists two ways. EncodeSpec stores the declarative
// content (users, documents, tags, ontology); BuildFromSpec re-runs the
// whole build pipeline on load. WriteSnapshot stores the frozen derived
// state — dictionary, graph tables, normalised matrix, saturated ontology
// and connection index — in a versioned binary format; ReadSnapshot
// cold-starts from it in milliseconds, which is what the long-lived query
// server (cmd/s3serve, internal/server) uses to boot and hot-reload.
package s3

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"s3/internal/core"
	"s3/internal/doc"
	"s3/internal/graph"
	"s3/internal/index"
	"s3/internal/obs"
	"s3/internal/text"
)

// Lang selects the text pipeline used to turn document text and tag
// keywords into index terms.
type Lang int

const (
	// English uses a Porter stemmer and English stop words.
	English Lang = iota
	// French uses a light French stemmer and French stop words.
	French
	// Raw disables stemming and stop-word removal (identifier-like
	// vocabularies).
	Raw
)

func (l Lang) analyzer() text.Analyzer {
	switch l {
	case French:
		return text.Analyzer{Lang: text.French}
	case Raw:
		return text.Analyzer{Lang: text.None}
	default:
		return text.Analyzer{Lang: text.English}
	}
}

// DocNode is a node of a structured document: a name, optional text
// content, and ordered children. URIs may be left empty everywhere except
// the root: Dewey-style URIs (root.1.2) are derived automatically.
type DocNode struct {
	URI      string
	Name     string
	Text     string
	Children []*DocNode
}

func (n *DocNode) toDoc() *doc.Node {
	out := &doc.Node{URI: n.URI, Name: n.Name, Text: n.Text}
	for _, c := range n.Children {
		out.Children = append(out.Children, c.toDoc())
	}
	return out
}

// Builder assembles an S3 instance. Content may be added in any order as
// long as referenced entities exist (users before their edges, documents
// before comments or tags on them). Builders are not safe for concurrent
// use.
type Builder struct {
	b    *graph.Builder
	lang Lang
}

// NewBuilder returns an empty builder with the given text pipeline.
func NewBuilder(lang Lang) *Builder {
	return &Builder{b: graph.NewBuilder(lang.analyzer()), lang: lang}
}

// AddUser registers a user; re-adding is a no-op.
func (b *Builder) AddUser(uri string) error { return b.b.AddUser(uri) }

// AddSocial adds a directed social edge with strength w ∈ (0, 1].
func (b *Builder) AddSocial(from, to string, w float64) error {
	return b.b.AddSocial(from, to, w, "")
}

// AddSocialAs adds a social edge through a named relationship (e.g.
// "follows"); the relationship is registered as a sub-property of
// S3:social in the ontology.
func (b *Builder) AddSocialAs(from, to string, w float64, relationship string) error {
	return b.b.AddSocial(from, to, w, relationship)
}

// AddDocument adds a structured document.
func (b *Builder) AddDocument(root *DocNode) error {
	if root == nil {
		return fmt.Errorf("s3: nil document")
	}
	return b.b.AddDocument(root.toDoc())
}

// AddDocumentText adds a single-node document with the given text.
func (b *Builder) AddDocumentText(uri, name, content string) error {
	return b.b.AddDocument(&doc.Node{URI: uri, Name: name, Text: content})
}

// AddDocumentXML parses an XML document and adds it under the given URI.
func (b *Builder) AddDocumentXML(uri string, r io.Reader) error {
	d, err := doc.ParseXML(uri, r)
	if err != nil {
		return err
	}
	return b.b.AddDocument(d.Root())
}

// AddDocumentJSON parses a JSON document and adds it under the given URI.
func (b *Builder) AddDocumentJSON(uri string, r io.Reader) error {
	d, err := doc.ParseJSON(uri, r)
	if err != nil {
		return err
	}
	return b.b.AddDocument(d.Root())
}

// AddPost records that a document (or fragment) was posted by a user.
func (b *Builder) AddPost(docURI, userURI string) error {
	return b.b.AddPost(docURI, userURI)
}

// AddComment records that document commentURI comments on (replies to,
// reviews, ...) the node targetURI of another document.
func (b *Builder) AddComment(commentURI, targetURI string) error {
	return b.b.AddComment(commentURI, targetURI, "")
}

// AddCommentAs is AddComment through a named sub-relationship of
// S3:commentsOn (e.g. "repliesTo").
func (b *Builder) AddCommentAs(commentURI, targetURI, relationship string) error {
	return b.b.AddComment(commentURI, targetURI, relationship)
}

// AddTag records that author annotated subject (a document node or an
// earlier tag) with a keyword. The keyword passes through the same text
// pipeline as document content.
func (b *Builder) AddTag(tagURI, subjectURI, authorURI, keyword string) error {
	return b.b.AddTag(tagURI, subjectURI, authorURI, keyword, "")
}

// AddTagAs is AddTag with a custom tag class (registered as a subclass of
// S3:relatedTo), e.g. "NLP:recognize" for tool-produced annotations.
func (b *Builder) AddTagAs(tagURI, subjectURI, authorURI, keyword, class string) error {
	return b.b.AddTag(tagURI, subjectURI, authorURI, keyword, class)
}

// AddEndorsement records a keyword-less approval (like, +1, retweet) of
// subject by author.
func (b *Builder) AddEndorsement(tagURI, subjectURI, authorURI string) error {
	return b.b.AddTag(tagURI, subjectURI, authorURI, "", "")
}

// AddTriple adds a weight-1 RDF statement to the ontology. Keywords
// occurring as subjects/objects should be in stemmed form to align with
// the content vocabulary (use Stem).
func (b *Builder) AddTriple(s, p, o string) {
	b.b.AddOntologyTriple(s, p, o)
}

// Stem runs a word through the builder's text pipeline, returning the
// index term it maps to (useful when writing ontology triples).
func (b *Builder) Stem(word string) string {
	ks := b.lang.analyzer().Keywords(word)
	if len(ks) == 0 {
		return word
	}
	return ks[0]
}

// Build validates and freezes the instance: it saturates the ontology,
// computes the normalised social-path matrix, partitions content into
// components and builds the connection index. The builder must not be
// used afterwards.
func (b *Builder) Build() (*Instance, error) {
	in, err := b.b.Build()
	if err != nil {
		return nil, err
	}
	return newInstance(in), nil
}

// newInstance indexes a frozen graph instance and wires the engine.
func newInstance(in *graph.Instance) *Instance {
	ix := index.Build(in)
	return &Instance{in: in, ix: ix, eng: core.NewEngine(in, ix)}
}

// Stats summarises an instance (Figure 4 of the paper).
type Stats = graph.Stats

// Instance is a frozen, queryable S3 instance. It is immutable (a search
// counter aside) and safe for concurrent searches.
type Instance struct {
	in   *graph.Instance
	ix   *index.Index
	eng  *core.Engine
	rdfv rdfView

	// lifecycle owns the memory mapping behind a LoadMmap instance
	// (Close / MappedBytes); zero for built and copy-loaded instances.
	lifecycle

	// searches counts SearchInfoed calls over the instance's lifetime;
	// rounds accumulates their exploration rounds (surfaced by Shards).
	searches atomic.Uint64
	rounds   atomic.Uint64

	// prox is the optional seeker-proximity checkpoint cache (atomic so it
	// can be attached or swapped while searches are in flight).
	prox atomic.Pointer[ProxCache]

	// obsm is the optional search-metrics sink (atomic for the same
	// reason: the serving layer attaches it while searches may be in
	// flight across a hot reload).
	obsm atomic.Pointer[SearchMetrics]
}

// Trace is a per-search span tree recorder. Pass one to a search with
// WithTrace; after the search, its root span holds the timed stages
// (resolve, rounds, finalize) as children. A nil *Trace disables
// recording at zero cost.
type Trace = obs.Trace

// SearchMetrics is the per-search instrument bundle (rounds-per-search
// and per-round latency histograms) a serving layer attaches with
// SetSearchMetrics so every search feeds the process-wide registry.
type SearchMetrics = obs.SearchMetrics

// SetSearchMetrics attaches (or with nil, detaches) the instrument
// bundle fed by subsequent searches. Safe to call while searches are in
// flight.
func (i *Instance) SetSearchMetrics(m *SearchMetrics) { i.obsm.Store(m) }

// Stats returns instance statistics.
func (i *Instance) Stats() Stats { return i.in.Stats() }

// HasUser reports whether uri names a user of the instance (and may
// therefore act as a seeker).
func (i *Instance) HasUser(uri string) bool {
	n, ok := i.in.NIDOf(uri)
	return ok && i.in.KindOf(n) == graph.KindUser
}

// Result is one search answer: a document fragment with its score
// interval (after a complete search, the interval tightly brackets the
// exact score; the answer set is provably the top-k).
type Result struct {
	// URI identifies the fragment (its root node).
	URI string
	// Document is the URI of the containing document's root.
	Document string
	// Lower and Upper bracket the S3k score.
	Lower, Upper float64
}

// SearchInfo reports how a search ended.
type SearchInfo struct {
	// Exact is true when the answer is provably the top-k (threshold or
	// exhaustion stop); false after an any-time (budget) stop.
	Exact bool
	// Iterations is the exploration depth reached.
	Iterations int
	// Elapsed is the wall-clock search time.
	Elapsed time.Duration
	// Warm is true when a proximity-cache checkpoint let the search skip
	// its earliest exploration rounds.
	Warm bool
	// Degraded is true when a distributed search ran with WithPartial and
	// one or more shards had no live replica: the answer covers only the
	// shards in ServedShards. Always false for local instances and for
	// full-coverage distributed searches.
	Degraded bool
	// ServedShards lists the shards the answer covers when Degraded is
	// true (nil otherwise).
	ServedShards []int
}

type searchConfig struct {
	opts    core.Options
	ctx     context.Context
	partial bool
}

// Option customises a search.
type Option func(*searchConfig)

// WithK sets the number of results (default 10).
func WithK(k int) Option { return func(c *searchConfig) { c.opts.K = k } }

// WithGamma sets the social damping factor γ > 1 (default 1.5). Larger
// values give distant parts of the network more influence — and make
// searches slower.
func WithGamma(gamma float64) Option {
	return func(c *searchConfig) { c.opts.Params.Gamma = gamma }
}

// WithEta sets the structural damping factor η ∈ (0,1) (default 0.8): a
// connection due to a fragment at depth d below a candidate counts η^d.
func WithEta(eta float64) Option {
	return func(c *searchConfig) { c.opts.Params.Eta = eta }
}

// WithBudget enables any-time termination: the search returns its best
// current answer when the budget expires.
func WithBudget(d time.Duration) Option {
	return func(c *searchConfig) { c.opts.Budget = d }
}

// WithMaxIterations caps the exploration depth (any-time termination).
func WithMaxIterations(n int) Option {
	return func(c *searchConfig) { c.opts.MaxIterations = n }
}

// WithWorkers parallelises candidate scoring across goroutines.
func WithWorkers(n int) Option {
	return func(c *searchConfig) { c.opts.Workers = n }
}

// WithTrace records the search's span tree into t (nil disables). The
// recording is observational only: it never changes the answer.
func WithTrace(t *Trace) Option {
	return func(c *searchConfig) { c.opts.Trace = t }
}

// WithContext cancels the search when ctx does: a distributed search
// checks it between lockstep rounds and releases its worker sessions on
// the way out. Local searches currently ignore it (their rounds are
// in-process and bounded by WithBudget).
func WithContext(ctx context.Context) Option {
	return func(c *searchConfig) { c.ctx = ctx }
}

// WithPartial lets a distributed search answer from the surviving shards
// when some shard has no live replica, instead of failing. A degraded
// answer is flagged in SearchInfo (Degraded, ServedShards); with full
// coverage the answer is identical to a plain search. Local instances
// always have full coverage, so the option is a no-op there.
func WithPartial() Option {
	return func(c *searchConfig) { c.partial = true }
}

// Search runs an S3k top-k search for the seeker.
func (i *Instance) Search(seekerURI string, keywords []string, opts ...Option) ([]Result, error) {
	rs, _, err := i.SearchInfoed(seekerURI, keywords, opts...)
	return rs, err
}

// SearchInfoed is Search returning termination information as well.
func (i *Instance) SearchInfoed(seekerURI string, keywords []string, opts ...Option) ([]Result, SearchInfo, error) {
	cfg := searchConfig{opts: core.DefaultOptions()}
	for _, o := range opts {
		o(&cfg)
	}
	seeker, ok := i.in.NIDOf(seekerURI)
	if !ok {
		return nil, SearchInfo{}, fmt.Errorf("s3: unknown seeker %q", seekerURI)
	}
	if pc := i.prox.Load(); pc != nil {
		cfg.opts.ProxCache = pc.c
	}
	cfg.opts.Obs = i.obsm.Load()
	i.searches.Add(1)
	rs, stats, err := i.eng.Search(seeker, keywords, cfg.opts)
	if err != nil {
		return nil, SearchInfo{}, err
	}
	i.rounds.Add(uint64(stats.Iterations))
	return mapResults(i.in, rs), mapSearchInfo(stats), nil
}

// mapResults converts engine results to the public form, resolving each
// fragment's containing document.
func mapResults(in *graph.Instance, rs []core.Result) []Result {
	out := make([]Result, 0, len(rs))
	for _, r := range rs {
		docURI := r.URI
		if root := in.DocRootOf(r.Doc); root != graph.NoNID {
			docURI = in.URIOf(root)
		}
		out = append(out, Result{URI: r.URI, Document: docURI, Lower: r.Lower, Upper: r.Upper})
	}
	return out
}

func mapSearchInfo(stats core.Stats) SearchInfo {
	return SearchInfo{
		Exact:      stats.Reason == core.StopThreshold || stats.Reason == core.StopExhausted || stats.Reason == core.StopNoMatch,
		Iterations: stats.Iterations,
		Elapsed:    stats.Elapsed,
		Warm:       stats.ResumedDepth > 0,
	}
}

// Extension returns the semantic extension of a keyword in this instance's
// ontology: the keyword's stemmed form plus every sub-class, sub-property
// and instance of it (Definition 2.1 of the paper).
func (i *Instance) Extension(keyword string) []string {
	return extension(i.in, keyword)
}

func extension(in *graph.Instance, keyword string) []string {
	ks := in.Analyzer().Keywords(keyword)
	if len(ks) == 0 {
		return nil
	}
	id, ok := in.Dict().Lookup(ks[0])
	if !ok {
		return []string{ks[0]}
	}
	var out []string
	for _, e := range in.Ontology().Ext(id) {
		out = append(out, in.Dict().String(e))
	}
	return out
}
