package s3

import (
	"io"

	"s3/internal/core"
	"s3/internal/snap"
)

// WriteSnapshot serialises the frozen instance — dictionary, graph
// tables, normalised transition matrix, saturated ontology and the
// connection index — in the versioned binary snapshot format of
// internal/snap. Unlike EncodeSpec, which stores the declarative content
// and re-runs the whole build pipeline on load, a snapshot stores every
// derived structure, so ReadSnapshot cold-starts in the time it takes to
// read flat arrays from disk.
//
// The format is canonical: the same instance always produces the same
// bytes, so snapshots can be content-addressed, cached and diffed.
func (i *Instance) WriteSnapshot(w io.Writer) error {
	return snap.Write(w, i.in, i.ix)
}

// ReadSnapshot reconstructs an instance from a snapshot written by
// WriteSnapshot. The snapshot embeds the text-pipeline configuration, so
// no language parameter is needed. Corrupt or truncated snapshots are
// rejected with an error.
func ReadSnapshot(r io.Reader) (*Instance, error) {
	in, ix, err := snap.Read(r)
	if err != nil {
		return nil, err
	}
	return &Instance{in: in, ix: ix, eng: core.NewEngine(in, ix)}, nil
}
