package s3

import (
	"io"
	"sync/atomic"

	"s3/internal/core"
	"s3/internal/snap"
)

// LoadMode selects how a snapshot or shard-set file becomes a servable
// instance.
type LoadMode int

const (
	// LoadCopy decodes the file into private, GC-owned memory: portable,
	// self-contained, and independent of the file afterwards. This is the
	// writer-compatible default.
	LoadCopy LoadMode = LoadMode(snap.LoadCopy)
	// LoadMmap memory-maps the file and serves queries from zero-copy
	// views of its pages: cold start is O(page faults) plus checksum and
	// validation scans, replicas of one snapshot on a host share physical
	// pages, and hot reload swaps mappings instead of re-decoding.
	// Close must be called when the instance is retired (searches still
	// running must finish first); legacy version-1 files and platforms
	// whose struct layout cannot alias the on-disk encoding fall back to
	// LoadCopy transparently.
	LoadMmap LoadMode = LoadMode(snap.LoadMmap)
)

// WriteSnapshot serialises the frozen instance — dictionary, graph
// tables, normalised transition matrix, saturated ontology and the
// connection index — in the versioned binary snapshot format of
// internal/snap (currently version 3: page-aligned raw sections that a
// mmap-based reader serves without decoding). Unlike EncodeSpec, which
// stores the declarative content and re-runs the whole build pipeline on
// load, a snapshot stores every derived structure, so ReadSnapshot
// cold-starts in the time it takes to read flat arrays from disk — and
// OpenSnapshot with LoadMmap in little more than the time it takes to
// map them.
//
// The format is canonical: the same instance always produces the same
// bytes, so snapshots can be content-addressed, cached and diffed.
func (i *Instance) WriteSnapshot(w io.Writer) error {
	return snap.Write(w, i.in, i.ix)
}

// ReadSnapshot reconstructs an instance from a snapshot written by
// WriteSnapshot, fully copied into private memory (LoadCopy semantics —
// use OpenSnapshot for the zero-copy mapped load). The snapshot embeds
// the text-pipeline configuration, so no language parameter is needed.
// Corrupt or truncated snapshots are rejected with an error.
func ReadSnapshot(r io.Reader) (*Instance, error) {
	in, ix, err := snap.Read(r)
	if err != nil {
		return nil, err
	}
	return &Instance{in: in, ix: ix, eng: core.NewEngine(in, ix)}, nil
}

// OpenSnapshot loads a snapshot file in the given mode. With LoadMmap the
// instance's tables are views into the mapped file: call Close when the
// instance is retired (after in-flight searches finish) to unmap it.
// Strings returned by the public API (results, extensions, RDF bindings)
// are always private copies and stay valid after Close.
func OpenSnapshot(path string, mode LoadMode) (*Instance, error) {
	s, err := snap.Open(path, snap.LoadMode(mode))
	if err != nil {
		return nil, err
	}
	i := &Instance{in: s.Instance, ix: s.Index, eng: core.NewEngine(s.Instance, s.Index)}
	i.setMapped(s.MappedBytes(), s.Close)
	return i, nil
}

// lifecycle owns the optional memory mapping behind an instance: the
// bytes count for /stats and an idempotent release hook.
type lifecycle struct {
	mappedBytes int64
	closed      atomic.Bool
	release     func() error
}

func (l *lifecycle) setMapped(bytes int64, release func() error) {
	l.mappedBytes = bytes
	l.release = release
}

// MappedBytes reports how many snapshot bytes back this instance through
// a memory mapping (0 for copy-loaded instances).
func (l *lifecycle) MappedBytes() int64 { return l.mappedBytes }

// Close releases the instance's memory mapping, if any. It must only be
// called once no search is executing on the instance; it is idempotent
// and a no-op for copy-loaded instances. Values previously returned by
// the public API (results, extensions, statistics) remain valid.
func (l *lifecycle) Close() error {
	if l.release == nil || !l.closed.CompareAndSwap(false, true) {
		return nil
	}
	return l.release()
}
