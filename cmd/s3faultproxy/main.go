// Command s3faultproxy runs a faultnet TCP proxy in front of a worker
// for multi-process chaos testing (see scripts/e2e-chaos-smoke.sh). It
// forwards -listen to -target with an optional fixed per-write latency;
// SIGHUP toggles refusing new connections, SIGUSR1 kills all live
// proxied connections.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"s3/internal/faultnet"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "address to listen on")
	target := flag.String("target", "", "address to forward to (required)")
	latencyMS := flag.Int("latency-ms", 0, "per-write latency in milliseconds")
	flag.Parse()
	if *target == "" {
		fmt.Fprintln(os.Stderr, "s3faultproxy: -target is required")
		os.Exit(2)
	}

	p, err := faultnet.NewProxy(*listen, *target)
	if err != nil {
		log.Fatalf("s3faultproxy: %v", err)
	}
	p.SetLatency(time.Duration(*latencyMS) * time.Millisecond)
	log.Printf("s3faultproxy: %s -> %s (latency %dms)", p.Addr(), *target, *latencyMS)

	sig := make(chan os.Signal, 4)
	signal.Notify(sig, syscall.SIGHUP, syscall.SIGUSR1, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		refusing := false
		for s := range sig {
			switch s {
			case syscall.SIGHUP:
				refusing = !refusing
				p.Refuse(refusing)
				log.Printf("s3faultproxy: refuse=%v", refusing)
			case syscall.SIGUSR1:
				p.KillConns()
				log.Printf("s3faultproxy: killed live connections")
			default:
				_ = p.Close()
				return
			}
		}
	}()

	if err := p.Serve(); err != nil {
		log.Printf("s3faultproxy: serve: %v", err)
	}
}
