// Command benchjson runs the repository's benchmarks and writes the
// results as machine-readable JSON, so the performance trajectory can be
// tracked across PRs (BENCH_<n>.json files at the repo root) and checked
// by CI without scraping test output.
//
// Usage:
//
//	go run ./cmd/benchjson -out BENCH_3.json -benchtime 200ms ./...
//
// It shells out to `go test -run ^$ -bench <pattern> -benchmem`, echoes
// the raw output, and parses the standard benchmark result lines into
// entries of the form {pkg, name, iterations, ns_per_op, bytes_per_op,
// allocs_per_op}. Custom b.ReportMetric columns (e.g. `61.6 wireB/round`)
// land in an `extra` map keyed by unit.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"log"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

type result struct {
	Pkg         string             `json:"pkg"`
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// benchLine matches the head of a result line: name and iteration count.
// The tail is a sequence of `<value> <unit>` pairs (ns/op, the -benchmem
// columns, and any custom b.ReportMetric units) parsed by metrics.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.+)$`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var (
		out       = flag.String("out", "BENCH.json", "output file for the parsed results")
		benchtime = flag.String("benchtime", "200ms", "go test -benchtime value (e.g. 1x for a smoke run)")
		pattern   = flag.String("bench", ".", "go test -bench pattern")
	)
	flag.Parse()
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = []string{"./..."}
	}

	args := append([]string{"test", "-run", "^$", "-bench", *pattern, "-benchmem", "-benchtime", *benchtime}, pkgs...)
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = io.MultiWriter(os.Stdout, &buf)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		log.Fatalf("go %s: %v", strings.Join(args, " "), err)
	}

	results := parse(&buf)
	if len(results) == 0 {
		log.Fatal("no benchmark results parsed")
	}
	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d results to %s", len(results), *out)
}

func parse(r io.Reader) []result {
	var (
		results []result
		pkg     string
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		res := result{Pkg: pkg, Name: m[1]}
		res.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		seen := false
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp, seen = v, true
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = int64(v)
			default:
				if res.Extra == nil {
					res.Extra = make(map[string]float64)
				}
				res.Extra[unit] = v
			}
		}
		if !seen {
			continue
		}
		results = append(results, res)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	return results
}
