// Command s3serve runs the long-lived S3 query server: it loads a frozen
// instance from a binary snapshot, a component-sharded shard set, or a
// spec rebuild, and serves S3k searches over an HTTP JSON API with result
// caching, concurrent-query coalescing, a bounded search worker pool and
// atomic hot reload (with cache re-warming).
//
// Usage:
//
//	s3gen -dataset twitter -out i1.spec -snap i1.snap
//	s3serve -snapshot i1.snap -addr :8080
//	curl -s localhost:8080/search -d '{"seeker":"tw:u17","keywords":["#h3"],"k":5}'
//	curl -s localhost:8080/stats
//	curl -s -X POST localhost:8080/reload   # after regenerating i1.snap
//
// Sharded serving — generate a shard set and point -shardset at the
// manifest; each query fans out across the shard engines in parallel and
// merges per-shard answers (identical to unsharded answers, often faster
// on multi-component instances):
//
//	s3gen -dataset twitter -shards 4 -snap i1.set
//	s3serve -shardset i1.set -addr :8080
//
// With -mmap the snapshot (or shard set) is memory-mapped and served
// through zero-copy views: cold start and /reload cost page faults plus
// checksum validation instead of a full decode, and replicas of one
// snapshot on a host share physical pages. The old mapping is unmapped
// only after the last in-flight search on it finishes, so snapshots are
// replaced by writing a temp file and renaming it over the served path:
//
//	s3serve -mmap -snapshot i1.snap -addr :8080
//
// Endpoints: POST /search, GET /extension, GET /stats, GET /healthz,
// POST /reload. See internal/server for the request and response bodies.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"s3"
	"s3/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("s3serve: ")
	var (
		snapPath  = flag.String("snapshot", "", "serve the instance from this binary snapshot (fast cold start)")
		setPath   = flag.String("shardset", "", "serve a sharded instance from this shard-set manifest (s3gen -shards)")
		specPath  = flag.String("spec", "", "rebuild the instance from this spec (gob) when -snapshot is not given")
		lang      = flag.String("lang", "raw", "text pipeline for -spec builds: english | french | raw")
		mmap      = flag.Bool("mmap", false, "memory-map -snapshot / -shardset files and serve zero-copy views (O(page-fault) cold start and reload; legacy v1 files fall back to copying)")
		addr      = flag.String("addr", ":8080", "listen address")
		cacheSize = flag.Int("cache", server.DefaultCacheSize, "result cache capacity in entries (negative disables)")
		proxMB    = flag.Int("proxcache-mb", int(server.DefaultProxCacheBytes>>20), "seeker-proximity checkpoint cache budget in MiB (<= 0 disables)")
		workers   = flag.Int("workers", 0, "max concurrently executing searches (0 = GOMAXPROCS)")
	)
	flag.Parse()

	mode := s3.LoadCopy
	if *mmap {
		mode = s3.LoadMmap
	}
	loader, err := makeLoader(*snapPath, *setPath, *specPath, *lang, mode)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	inst, err := loader()
	if err != nil {
		log.Fatal(err)
	}
	loadMS := time.Since(start)
	how := "copied"
	if mb := inst.MappedBytes(); mb > 0 {
		how = fmt.Sprintf("mapped %d bytes", mb)
	}
	log.Printf("instance ready in %v, %s (%d users, %d documents, %d components)",
		loadMS.Round(time.Millisecond), how,
		inst.Stats().Users, inst.Stats().Documents, inst.Stats().Components)
	logShardLayout(inst)

	proxBytes := int64(*proxMB) << 20
	if *proxMB <= 0 {
		proxBytes = -1
	}
	srv, err := server.New(server.Config{
		Instance:       inst,
		Loader:         loader,
		CacheSize:      *cacheSize,
		ProxCacheBytes: proxBytes,
		Workers:        *workers,
		LoadMS:         loadMS.Milliseconds(),
	})
	if err != nil {
		log.Fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		log.Print("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()
	log.Printf("serving on %s", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// ListenAndServe returns as soon as the listener closes; wait for
	// Shutdown to finish draining in-flight requests before exiting.
	<-drained
}

// logShardLayout prints the per-shard layout when serving a shard set.
func logShardLayout(inst s3.Queryable) {
	si, ok := inst.(*s3.ShardedInstance)
	if !ok {
		return
	}
	log.Printf("sharded: %d shards", si.NumShards())
	for i, sh := range si.Shards() {
		log.Printf("  shard %d: %d documents, %d components, %d tags", i, sh.Documents, sh.Components, sh.Tags)
	}
}

// makeLoader builds the instance-loading closure used both for the
// initial load and for POST /reload. Snapshot and shard-set loading need
// no language: both embed the text-pipeline configuration.
func makeLoader(snapPath, setPath, specPath, lang string, mode s3.LoadMode) (func() (s3.Queryable, error), error) {
	sources := 0
	for _, p := range []string{snapPath, setPath, specPath} {
		if p != "" {
			sources++
		}
	}
	if sources > 1 {
		return nil, fmt.Errorf("-snapshot, -shardset and -spec are mutually exclusive")
	}
	switch {
	case snapPath != "":
		return func() (s3.Queryable, error) {
			return s3.OpenSnapshot(snapPath, mode)
		}, nil
	case setPath != "":
		return func() (s3.Queryable, error) {
			return s3.OpenShardSet(setPath, mode)
		}, nil
	case specPath != "":
		l, err := parseLang(lang)
		if err != nil {
			return nil, err
		}
		return func() (s3.Queryable, error) {
			f, err := os.Open(specPath)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			return s3.BuildFromSpec(f, l)
		}, nil
	default:
		return nil, fmt.Errorf("one of -snapshot, -shardset or -spec is required")
	}
}

func parseLang(s string) (s3.Lang, error) {
	switch s {
	case "english":
		return s3.English, nil
	case "french":
		return s3.French, nil
	case "raw":
		return s3.Raw, nil
	default:
		return 0, fmt.Errorf("unknown -lang %q (want english, french or raw)", s)
	}
}
