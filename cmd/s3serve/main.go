// Command s3serve runs the long-lived S3 query server: it loads a frozen
// instance from a binary snapshot, a component-sharded shard set, or a
// spec rebuild, and serves S3k searches over an HTTP JSON API with result
// caching, concurrent-query coalescing, a bounded search worker pool and
// atomic hot reload (with cache re-warming).
//
// Usage:
//
//	s3gen -dataset twitter -out i1.spec -snap i1.snap
//	s3serve -snapshot i1.snap -addr :8080
//	curl -s localhost:8080/search -d '{"seeker":"tw:u17","keywords":["#h3"],"k":5}'
//	curl -s localhost:8080/stats
//	curl -s -X POST localhost:8080/reload   # after regenerating i1.snap
//
// Sharded serving — generate a shard set and point -shardset at the
// manifest; each query fans out across the shard engines in parallel and
// merges per-shard answers (identical to unsharded answers, often faster
// on multi-component instances):
//
//	s3gen -dataset twitter -shards 4 -snap i1.set
//	s3serve -shardset i1.set -addr :8080
//
// Distributed serving — worker processes hosting one or more shards each
// plus a coordinator that scatter/gathers the lockstep search rounds
// over a compact binary protocol. Each worker maps only the manifest's
// search substrate plus its hosted shards (sliced node tables); answers
// are byte-identical to the single-process shard set. A worker hosting
// several shards (-shards-of) drives them all off ONE shared proximity
// iterator — one graph step per round for the whole group — and the
// coordinator sends it one round RPC per batch instead of one per shard:
//
//	s3serve -shardset i1.set -shards-of 0,2 -mmap -addr :8081
//	s3serve -shardset i1.set -shards-of 1,3 -mmap -addr :8082
//	s3serve -shardset i1.set -coordinator \
//	        -worker-urls http://localhost:8081,http://localhost:8082 -addr :8080
//
// With -mmap the snapshot (or shard set) is memory-mapped and served
// through zero-copy views: cold start and /reload cost page faults plus
// checksum validation instead of a full decode, and replicas of one
// snapshot on a host share physical pages. The old mapping is unmapped
// only after the last in-flight search on it finishes, so snapshots are
// replaced by writing a temp file and renaming it over the served path.
//
// Endpoints: POST /search (?trace=1 returns the span tree), GET
// /extension, GET /stats, GET /metrics (Prometheus text exposition), GET
// /debug/traces (recent traces), GET /healthz (readiness; 503 while
// loading or draining), GET /livez (liveness), POST /reload. Workers
// speak POST /shard/v1/{begin,round,rounds,finalize,end} instead of
// /search but expose the same /metrics and /debug/traces. See
// internal/server and internal/dshard for the request and response
// bodies.
//
// Observability extras: -slowlog-ms logs a JSON line to stderr for every
// search slower than the threshold, and -debug-addr serves net/http/pprof
// on a second listener (all three modes) so profiling stays off the
// query port.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"s3"
	"s3/internal/dshard"
	"s3/internal/obs"
	"s3/internal/server"
	"s3/internal/snap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("s3serve: ")
	var (
		snapPath   = flag.String("snapshot", "", "serve the instance from this binary snapshot (fast cold start)")
		setPath    = flag.String("shardset", "", "serve a sharded instance from this shard-set manifest (s3gen -shards)")
		specPath   = flag.String("spec", "", "rebuild the instance from this spec (gob) when -snapshot is not given")
		lang       = flag.String("lang", "raw", "text pipeline for -spec builds: english | french | raw")
		mmap       = flag.Bool("mmap", false, "memory-map -snapshot / -shardset files and serve zero-copy views (O(page-fault) cold start and reload; legacy v1 files fall back to copying)")
		shardOf    = flag.Int("shard-of", -1, "worker mode: serve only this shard of -shardset over the distributed round protocol")
		shardsOf   = flag.String("shards-of", "", "worker mode: serve these comma-separated shards of -shardset from one process (shared proximity iterator per search, one round RPC per host; e.g. -shards-of 0,2)")
		verifyMode = flag.String("verify", "lazy", "worker mode: snapshot checksum verification: lazy (CRC pass overlaps serving; a fault flips /healthz to corrupt) | eager (verify fully before readiness)")
		coord      = flag.Bool("coordinator", false, "coordinator mode: scatter/gather searches for -shardset across -worker-urls")
		workerURL  = flag.String("worker-urls", "", "comma-separated worker base URLs for -coordinator (e.g. http://h1:8081,http://h2:8082)")
		roundBatch = flag.Int("round-batch", 0, "coordinator mode: max lockstep rounds per worker RPC (0 = default, 1 = one round per RPC, negative = classic per-round protocol)")
		noSpec     = flag.Bool("no-speculation", false, "coordinator mode: disable speculative round pipelining")
		noHedge    = flag.Bool("no-hedging", false, "coordinator mode: disable hedged round RPCs against replica workers")
		noDelta    = flag.Bool("no-delta", false, "coordinator mode: disable proto-5 delta round framing (full round replies, for A/B measurement)")
		addr       = flag.String("addr", ":8080", "listen address")
		cacheSize  = flag.Int("cache", server.DefaultCacheSize, "result cache capacity in entries (negative disables)")
		proxMB     = flag.Int("proxcache-mb", int(server.DefaultProxCacheBytes>>20), "seeker-proximity checkpoint cache budget in MiB (<= 0 disables)")
		workers    = flag.Int("workers", 0, "max concurrently executing searches (0 = GOMAXPROCS)")
		maxQueue   = flag.Int("max-queue", 0, "max searches waiting for a worker slot before arrivals are shed with 429 (0 = 8x workers, negative = unbounded)")
		queueWait  = flag.Int("queue-wait-ms", 0, "max milliseconds a queued search waits for a worker slot before 429 (0 = 2000, negative = uncapped)")
		slowMS     = flag.Int("slowlog-ms", 0, "log a JSON line to stderr for every search slower than this many milliseconds (0 disables)")
		debugAddr  = flag.String("debug-addr", "", "serve net/http/pprof on this extra address (empty disables)")
	)
	flag.Parse()

	startDebugListener(*debugAddr)
	mode := s3.LoadCopy
	if *mmap {
		mode = s3.LoadMmap
	}
	shards, err := parseShardList(*shardsOf)
	if err != nil {
		log.Fatal(err)
	}
	if *shardOf >= 0 && len(shards) == 0 {
		shards = []int{*shardOf}
	}
	if len(shards) > 0 {
		if *setPath == "" || *snapPath != "" || *specPath != "" || *coord {
			log.Fatal("-shard-of/-shards-of requires -shardset (and excludes -snapshot, -spec and -coordinator)")
		}
		verify, err := parseVerify(*verifyMode)
		if err != nil {
			log.Fatal(err)
		}
		workerProxBytes := int64(*proxMB) << 20
		if *proxMB <= 0 {
			workerProxBytes = -1
		}
		runWorker(*setPath, shards, mode, *addr, workerProxBytes, verify)
		return
	}

	loader, err := makeLoader(*snapPath, *setPath, *specPath, *lang, mode, *coord, *workerURL, *roundBatch, *noSpec, *noHedge, *noDelta)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	inst, err := loader()
	if err != nil {
		log.Fatal(err)
	}
	loadMS := time.Since(start)
	how := "copied"
	if mb := inst.MappedBytes(); mb > 0 {
		how = fmt.Sprintf("mapped %d bytes", mb)
	}
	log.Printf("instance ready in %v, %s (%d users, %d documents, %d components)",
		loadMS.Round(time.Millisecond), how,
		inst.Stats().Users, inst.Stats().Documents, inst.Stats().Components)
	logShardLayout(inst)
	if di, ok := inst.(*s3.DistributedInstance); ok {
		if err := di.Probe(context.Background()); err != nil {
			log.Printf("warning: worker fleet incomplete: %v (searches fail until every shard has a live worker)", err)
		} else {
			log.Printf("coordinator: every shard covered by a healthy worker")
		}
	}

	proxBytes := int64(*proxMB) << 20
	if *proxMB <= 0 {
		proxBytes = -1
	}
	srv, err := server.New(server.Config{
		Instance:       inst,
		Loader:         loader,
		CacheSize:      *cacheSize,
		ProxCacheBytes: proxBytes,
		Workers:        *workers,
		MaxQueue:       *maxQueue,
		MaxQueueWait:   time.Duration(*queueWait) * time.Millisecond,
		LoadMS:         loadMS.Milliseconds(),
		SlowLog:        obs.NewSlowLog(os.Stderr, time.Duration(*slowMS)*time.Millisecond),
	})
	if err != nil {
		log.Fatal(err)
	}

	serveHTTP(*addr, srv.Handler(), func() { srv.SetDraining(true) })
}

// startDebugListener serves net/http/pprof (registered on the default
// mux by its blank import) on its own address, keeping profiling off the
// query port in every mode.
func startDebugListener(addr string) {
	if addr == "" {
		return
	}
	go func() {
		log.Printf("debug listener (pprof) on %s", addr)
		if err := http.ListenAndServe(addr, nil); err != nil {
			log.Printf("debug listener: %v", err)
		}
	}()
}

// serveHTTP runs the listener until SIGINT/SIGTERM, then drains: flip
// readiness off (health-checked routers stop sending) and shut down
// gracefully.
func serveHTTP(addr string, handler http.Handler, drain func()) {
	httpSrv := &http.Server{Addr: addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		log.Print("draining")
		if drain != nil {
			drain()
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()
	log.Printf("serving on %s", addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// ListenAndServe returns as soon as the listener closes; wait for
	// Shutdown to finish draining in-flight requests before exiting.
	<-drained
}

// runWorker serves one or more shards of a set over the round protocol
// from a single process. The HTTP listener comes up immediately with
// /healthz reporting "loading"; the shards load in the background (into
// one shared mapping — the substrate is mapped once however many shards
// ride on it) and readiness flips to "serving" when they are queryable —
// exactly what a coordinator's membership probe expects.
func runWorker(setPath string, shards []int, mode s3.LoadMode, addr string, proxBytes int64, verify snap.VerifyMode) {
	w := dshard.NewWorker(dshard.WorkerConfig{
		ManifestPath:   setPath,
		Shards:         shards,
		Mode:           snap.LoadMode(mode),
		ProxCacheBytes: proxBytes,
		Verify:         verify,
	})
	go func() {
		start := time.Now()
		if err := w.Load(); err != nil {
			log.Fatalf("loading shards %v of %s: %v", shards, setPath, err)
		}
		st := w.Stats()
		for _, row := range st.Shards {
			log.Printf("shard %d of %d ready in %v: %d documents, %d components, mapped %d bytes (sliced=%v)",
				row.Shard, st.ShardCount, time.Since(start).Round(time.Millisecond),
				row.Documents, row.Components, st.MappedBytes, st.Sliced)
		}
	}()
	// On SIGTERM, flip readiness off so coordinators bench this replica,
	// then finish the in-flight sessions before the HTTP shutdown starts:
	// a mid-search kill would force every coordinator to fail over, a
	// drained exit costs nothing.
	serveHTTP(addr, w.Handler(), func() {
		w.SetDraining()
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := w.Drain(ctx); err != nil {
			log.Printf("drain: %v", err)
		}
	})
}

// logShardLayout prints the per-shard layout when serving a shard set.
func logShardLayout(inst s3.Queryable) {
	type sharded interface {
		NumShards() int
		Shards() []s3.ShardStat
	}
	si, ok := inst.(sharded)
	if !ok || si.NumShards() < 2 {
		return
	}
	log.Printf("sharded: %d shards", si.NumShards())
	for i, sh := range si.Shards() {
		log.Printf("  shard %d: %d documents, %d components, %d tags", i, sh.Documents, sh.Components, sh.Tags)
	}
}

// makeLoader builds the instance-loading closure used both for the
// initial load and for POST /reload. Snapshot and shard-set loading need
// no language: both embed the text-pipeline configuration.
func makeLoader(snapPath, setPath, specPath, lang string, mode s3.LoadMode, coord bool, workerURLs string, roundBatch int, noSpec, noHedge, noDelta bool) (func() (s3.Queryable, error), error) {
	sources := 0
	for _, p := range []string{snapPath, setPath, specPath} {
		if p != "" {
			sources++
		}
	}
	if sources > 1 {
		return nil, fmt.Errorf("-snapshot, -shardset and -spec are mutually exclusive")
	}
	if coord {
		if setPath == "" {
			return nil, fmt.Errorf("-coordinator requires -shardset (the manifest)")
		}
		var urls []string
		for _, u := range strings.Split(workerURLs, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, strings.TrimRight(u, "/"))
			}
		}
		if len(urls) == 0 {
			return nil, fmt.Errorf("-coordinator requires -worker-urls (comma-separated worker URLs)")
		}
		var copts []s3.CoordinatorOption
		if roundBatch != 0 {
			copts = append(copts, s3.WithRoundBatch(roundBatch))
		}
		if noSpec {
			copts = append(copts, s3.WithoutSpeculation())
		}
		if noHedge {
			copts = append(copts, s3.WithoutHedging())
		}
		if noDelta {
			copts = append(copts, s3.WithoutDelta())
		}
		return func() (s3.Queryable, error) {
			return s3.OpenCoordinator(setPath, urls, mode, copts...)
		}, nil
	}
	switch {
	case snapPath != "":
		return func() (s3.Queryable, error) {
			return s3.OpenSnapshot(snapPath, mode)
		}, nil
	case setPath != "":
		return func() (s3.Queryable, error) {
			return s3.OpenShardSet(setPath, mode)
		}, nil
	case specPath != "":
		l, err := parseLang(lang)
		if err != nil {
			return nil, err
		}
		return func() (s3.Queryable, error) {
			f, err := os.Open(specPath)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			return s3.BuildFromSpec(f, l)
		}, nil
	default:
		return nil, fmt.Errorf("one of -snapshot, -shardset or -spec is required")
	}
}

// parseShardList parses the -shards-of value: comma-separated,
// non-negative, duplicate-free shard ordinals.
func parseShardList(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var shards []int
	seen := map[int]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("-shards-of: %q is not a shard ordinal", part)
		}
		if seen[n] {
			return nil, fmt.Errorf("-shards-of: shard %d listed twice", n)
		}
		seen[n] = true
		shards = append(shards, n)
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("-shards-of: no shards in %q", s)
	}
	return shards, nil
}

func parseVerify(s string) (snap.VerifyMode, error) {
	switch s {
	case "lazy":
		return snap.VerifyLazy, nil
	case "eager":
		return snap.VerifyEager, nil
	default:
		return 0, fmt.Errorf("unknown -verify %q (want lazy or eager)", s)
	}
}

func parseLang(s string) (s3.Lang, error) {
	switch s {
	case "english":
		return s3.English, nil
	case "french":
		return s3.French, nil
	case "raw":
		return s3.Raw, nil
	default:
		return 0, fmt.Errorf("unknown -lang %q (want english, french or raw)", s)
	}
}
