package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"s3"
	"s3/internal/datagen"
	"s3/internal/dshard"
	"s3/internal/server"
	"s3/internal/snap"
)

// writeSnapshotFile generates a small instance and persists it the way
// the quickstart does (gen → snapshot), returning the file path and the
// in-memory instance for direct comparison.
func writeSnapshotFile(t *testing.T) (string, *s3.Instance) {
	t.Helper()
	o := datagen.DefaultTwitterOptions()
	o.Users, o.Tweets, o.Seed = 60, 240, 11
	spec, _ := datagen.Twitter(o)
	var specBuf bytes.Buffer
	if err := spec.Encode(&specBuf); err != nil {
		t.Fatal(err)
	}
	inst, err := s3.BuildFromSpec(&specBuf, s3.Raw)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "i1.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, inst
}

// TestServeFromSnapshotEndToEnd exercises the full serving pipeline:
// snapshot on disk → loader → HTTP server on a random port → /search
// responses identical to direct Instance.Search calls.
func TestServeFromSnapshotEndToEnd(t *testing.T) {
	path, built := writeSnapshotFile(t)

	loader, err := makeLoader(path, "", "", "raw", s3.LoadCopy, false, "", 0, false, false, false)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := loader()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Instance: inst, Loader: loader})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	checked := 0
	for u := 0; u < 60 && checked < 3; u++ {
		seeker := fmt.Sprintf("tw:u%d", u)
		if !built.HasUser(seeker) {
			continue
		}
		for _, kw := range []string{"#h1", "#h2", "#h3", "#h5"} {
			want, err := built.Search(seeker, []string{kw}, s3.WithK(5))
			if err != nil || len(want) == 0 {
				continue
			}
			body := fmt.Sprintf(`{"seeker":%q,"keywords":[%q],"k":5}`, seeker, kw)
			resp, err := http.Post(ts.URL+"/search", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("POST /search = %d", resp.StatusCode)
			}
			var got struct {
				Results []struct {
					URI      string  `json:"uri"`
					Document string  `json:"document"`
					Lower    float64 `json:"lower"`
					Upper    float64 `json:"upper"`
				} `json:"results"`
				Exact bool `json:"exact"`
			}
			err = json.NewDecoder(resp.Body).Decode(&got)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Results) != len(want) {
				t.Fatalf("%s/%s: served %d results, direct search %d", seeker, kw, len(got.Results), len(want))
			}
			for i, w := range want {
				g := got.Results[i]
				if g.URI != w.URI || g.Document != w.Document || g.Lower != w.Lower || g.Upper != w.Upper {
					t.Errorf("%s/%s result %d: served %+v, direct %+v", seeker, kw, i, g, w)
				}
			}
			checked++
			break
		}
	}
	if checked == 0 {
		t.Fatal("no query produced results; test instance too sparse")
	}

	// Liveness and stats must reflect the snapshot-backed instance.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /healthz = %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Instance s3.Stats `json:"instance"`
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Instance != built.Stats() {
		t.Errorf("served stats %+v, built %+v", stats.Instance, built.Stats())
	}

	// Hot reload re-reads the snapshot file.
	resp, err = http.Post(ts.URL+"/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("POST /reload = %d", resp.StatusCode)
	}
}

func TestMakeLoaderValidation(t *testing.T) {
	if _, err := makeLoader("", "", "", "raw", s3.LoadCopy, false, "", 0, false, false, false); err == nil {
		t.Error("no source accepted")
	}
	if _, err := makeLoader("a.snap", "", "b.spec", "raw", s3.LoadCopy, false, "", 0, false, false, false); err == nil {
		t.Error("snapshot+spec accepted")
	}
	if _, err := makeLoader("a.snap", "a.set", "", "raw", s3.LoadCopy, false, "", 0, false, false, false); err == nil {
		t.Error("snapshot+shardset accepted")
	}
	if _, err := makeLoader("", "", "b.spec", "klingon", s3.LoadCopy, false, "", 0, false, false, false); err == nil {
		t.Error("unknown language accepted")
	}
	loader, err := makeLoader(filepath.Join(t.TempDir(), "missing.snap"), "", "", "raw", s3.LoadCopy, false, "", 0, false, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader(); err == nil {
		t.Error("missing snapshot file loaded")
	}
	loader, err = makeLoader("", filepath.Join(t.TempDir(), "missing.set"), "", "raw", s3.LoadCopy, false, "", 0, false, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader(); err == nil {
		t.Error("missing shard set loaded")
	}
}

// TestServeFromShardSetEndToEnd exercises the sharded serving pipeline:
// s3gen-style shard-set files on disk → -shardset loader → fan-out/merge
// answers identical to the unsharded instance, with per-shard stats.
func TestServeFromShardSetEndToEnd(t *testing.T) {
	o := datagen.DefaultTwitterOptions()
	o.Users, o.Tweets, o.Seed = 60, 240, 11
	spec, _ := datagen.Twitter(o)
	var specBuf bytes.Buffer
	if err := spec.Encode(&specBuf); err != nil {
		t.Fatal(err)
	}
	built, err := s3.BuildFromSpec(&specBuf, s3.Raw)
	if err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(t.TempDir(), "i1.set")
	if _, err := built.WriteShardSetFiles(manifest, 3); err != nil {
		t.Fatal(err)
	}

	loader, err := makeLoader("", manifest, "", "raw", s3.LoadCopy, false, "", 0, false, false, false)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := loader()
	if err != nil {
		t.Fatal(err)
	}
	si, ok := inst.(*s3.ShardedInstance)
	if !ok {
		t.Fatalf("shard-set loader returned %T", inst)
	}
	if si.NumShards() != 3 {
		t.Fatalf("loaded %d shards, want 3", si.NumShards())
	}
	srv, err := server.New(server.Config{Instance: inst, Loader: loader})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	checked := 0
	for u := 0; u < 60 && checked < 3; u++ {
		seeker := fmt.Sprintf("tw:u%d", u)
		if !built.HasUser(seeker) {
			continue
		}
		for _, kw := range []string{"#h1", "#h2", "#h3", "#h5"} {
			want, err := built.Search(seeker, []string{kw}, s3.WithK(5))
			if err != nil || len(want) == 0 {
				continue
			}
			body := fmt.Sprintf(`{"seeker":%q,"keywords":[%q],"k":5}`, seeker, kw)
			resp, err := http.Post(ts.URL+"/search", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("POST /search = %d", resp.StatusCode)
			}
			var got struct {
				Results []struct {
					URI      string  `json:"uri"`
					Document string  `json:"document"`
					Lower    float64 `json:"lower"`
					Upper    float64 `json:"upper"`
				} `json:"results"`
			}
			err = json.NewDecoder(resp.Body).Decode(&got)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Results) != len(want) {
				t.Fatalf("%s/%s: served %d results, direct search %d", seeker, kw, len(got.Results), len(want))
			}
			for i, w := range want {
				g := got.Results[i]
				if g.URI != w.URI || g.Document != w.Document || g.Lower != w.Lower || g.Upper != w.Upper {
					t.Errorf("%s/%s result %d: sharded serve %+v, direct %+v", seeker, kw, i, g, w)
				}
			}
			checked++
			break
		}
	}
	if checked == 0 {
		t.Fatal("no query produced results; test instance too sparse")
	}

	// /stats reports the shard layout, and the whole-instance stats match
	// the unsharded build.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Instance   s3.Stats `json:"instance"`
		ShardCount int      `json:"shard_count"`
		Shards     []struct {
			Documents  int    `json:"documents"`
			Components int    `json:"components"`
			Searches   uint64 `json:"searches"`
		} `json:"shards"`
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Instance != built.Stats() {
		t.Errorf("served stats %+v, built %+v", stats.Instance, built.Stats())
	}
	if stats.ShardCount != 3 || len(stats.Shards) != 3 {
		t.Fatalf("stats report %d shards (%d rows), want 3", stats.ShardCount, len(stats.Shards))
	}
	docs, comps, searches := 0, 0, uint64(0)
	for _, sh := range stats.Shards {
		docs += sh.Documents
		comps += sh.Components
		searches += sh.Searches
	}
	if docs != built.Stats().Documents || comps != built.Stats().Components {
		t.Errorf("shard rows sum to %d docs / %d comps, instance has %d / %d",
			docs, comps, built.Stats().Documents, built.Stats().Components)
	}
	if searches == 0 {
		t.Error("no shard reports any fanned-out search")
	}

	// Hot reload re-reads the shard set.
	resp, err = http.Post(ts.URL+"/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("POST /reload = %d", resp.StatusCode)
	}
}

// TestMmapLoaderEndToEnd exercises the -mmap serving path: the loader
// memory-maps the snapshot, reports its size, and answers searches
// identically to the in-memory instance.
func TestMmapLoaderEndToEnd(t *testing.T) {
	path, built := writeSnapshotFile(t)
	loader, err := makeLoader(path, "", "", "raw", s3.LoadMmap, false, "", 0, false, false, false)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := loader()
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if inst.MappedBytes() == 0 {
		t.Fatal("mmap loader produced an unmapped instance")
	}
	seeker, kw := "", ""
	for u := 0; u < 50 && seeker == ""; u++ {
		s := fmt.Sprintf("tw:u%d", u)
		if !built.HasUser(s) {
			continue
		}
		for _, k := range []string{"#h1", "#h2", "#h3", "#h5", "#h8"} {
			if rs, err := built.Search(s, []string{k}, s3.WithK(3)); err == nil && len(rs) > 0 {
				seeker, kw = s, k
				break
			}
		}
	}
	if seeker == "" {
		t.Fatal("no usable query")
	}
	want, err := built.Search(seeker, []string{kw}, s3.WithK(5))
	if err != nil {
		t.Fatal(err)
	}
	got, err := inst.Search(seeker, []string{kw}, s3.WithK(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("mapped instance returned %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("result %d diverges: %+v vs %+v", i, want[i], got[i])
		}
	}
}

// startTestWorker boots one in-process shard worker over loopback HTTP —
// the same Worker the -shard-of mode serves.
func startTestWorker(t *testing.T, manifest string, shard int) *httptest.Server {
	t.Helper()
	w := dshard.NewWorker(dshard.WorkerConfig{
		ManifestPath: manifest,
		Shard:        shard,
		Mode:         snap.LoadMmap,
	})
	if err := w.Load(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(w.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// TestServeDistributedEndToEnd exercises the full distributed serving
// pipeline over loopback: shard set on disk → two shard workers (mapped,
// sliced) → coordinator through the public HTTP API. Every answer must
// be byte-identical to searching the in-memory instance directly, and
// /stats must expose the aggregated per-worker counters.
func TestServeDistributedEndToEnd(t *testing.T) {
	o := datagen.DefaultTwitterOptions()
	o.Users, o.Tweets, o.Seed = 60, 240, 11
	spec, _ := datagen.Twitter(o)
	var specBuf bytes.Buffer
	if err := spec.Encode(&specBuf); err != nil {
		t.Fatal(err)
	}
	built, err := s3.BuildFromSpec(&specBuf, s3.Raw)
	if err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(t.TempDir(), "i1.set")
	if _, err := built.WriteShardSetFiles(manifest, 2); err != nil {
		t.Fatal(err)
	}

	w0 := startTestWorker(t, manifest, 0)
	w1 := startTestWorker(t, manifest, 1)

	loader, err := makeLoader("", manifest, "", "raw", s3.LoadMmap, true, w0.URL+","+w1.URL, 0, false, false, false)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := loader()
	if err != nil {
		t.Fatal(err)
	}
	di, ok := inst.(*s3.DistributedInstance)
	if !ok {
		t.Fatalf("coordinator loader returned %T", inst)
	}
	if err := di.Probe(t.Context()); err != nil {
		t.Fatalf("worker fleet incomplete: %v", err)
	}
	srv, err := server.New(server.Config{Instance: inst, Loader: loader})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	checked := 0
	for u := 0; u < 60 && checked < 4; u++ {
		seeker := fmt.Sprintf("tw:u%d", u)
		if !built.HasUser(seeker) {
			continue
		}
		for _, kw := range []string{"#h1", "#h2", "#h3", "#h5"} {
			want, err := built.Search(seeker, []string{kw}, s3.WithK(5))
			if err != nil || len(want) == 0 {
				continue
			}
			body := fmt.Sprintf(`{"seeker":%q,"keywords":[%q],"k":5,"no_cache":true}`, seeker, kw)
			resp, err := http.Post(ts.URL+"/search", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("POST /search = %d", resp.StatusCode)
			}
			var got struct {
				Results []struct {
					URI      string  `json:"uri"`
					Document string  `json:"document"`
					Lower    float64 `json:"lower"`
					Upper    float64 `json:"upper"`
				} `json:"results"`
				Exact bool `json:"exact"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if !got.Exact {
				t.Fatalf("distributed search for %s %q not exact", seeker, kw)
			}
			if len(got.Results) != len(want) {
				t.Fatalf("distributed search for %s %q: %d results, want %d", seeker, kw, len(got.Results), len(want))
			}
			for i, r := range got.Results {
				if r.URI != want[i].URI || r.Lower != want[i].Lower || r.Upper != want[i].Upper {
					t.Fatalf("distributed result %d for %s %q: %+v != %+v", i, seeker, kw, r, want[i])
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no queries checked")
	}

	// /stats must carry the coordinator's aggregated per-worker view with
	// the stable per-shard counter rows. Worker counters are collected by
	// the membership probe; refresh it so this test sees the searches it
	// just ran (production refreshes every probe interval).
	if err := di.Probe(t.Context()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		ShardCount  int `json:"shard_count"`
		Distributed struct {
			Role    string `json:"role"`
			Workers []struct {
				Healthy bool `json:"healthy"`
			} `json:"workers"`
			Shards []struct {
				Shard    int    `json:"shard"`
				Searches uint64 `json:"searches"`
				Rounds   uint64 `json:"rounds"`
			} `json:"shards"`
		} `json:"distributed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.ShardCount != 2 || stats.Distributed.Role != "coordinator" {
		t.Fatalf("stats: shard_count=%d role=%q", stats.ShardCount, stats.Distributed.Role)
	}
	if len(stats.Distributed.Workers) != 2 || !stats.Distributed.Workers[0].Healthy || !stats.Distributed.Workers[1].Healthy {
		t.Fatalf("stats workers: %+v", stats.Distributed.Workers)
	}
	rounds := uint64(0)
	searches := uint64(0)
	for _, row := range stats.Distributed.Shards {
		rounds += row.Rounds
		searches += row.Searches
	}
	if searches == 0 || rounds == 0 {
		t.Fatalf("aggregated worker counters empty: searches=%d rounds=%d", searches, rounds)
	}
}
