// Command s3bench regenerates the tables and figures of the paper's
// evaluation section (§5) over the synthetic dataset stand-ins:
//
//	Figure 4  — instance statistics (I1/I2/I3)
//	Figure 5  — median query times on I1, S3k γ-sweep vs TopkS α-sweep
//	Figure 5b — the same sweep on I2 (the paper reports "similar" results)
//	Figure 6  — the same sweep on I3
//	Figure 7  — query-time quartiles vs k on I1 (γ ∈ {1.5, 4})
//	Figure 8  — S3k vs TopkS answer-quality measures per instance
//
// Usage:
//
//	s3bench -fig all -queries 20 -scale 1
//	s3bench -fig 5 -queries 100            # the paper's workload size
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"s3/internal/bench"
	"s3/internal/datagen"
	"s3/internal/graph"
	"s3/internal/text"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("s3bench: ")
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: 4 | 5 | 5b | 6 | 7 | 8 | ablation | all")
		queries = flag.Int("queries", 20, "queries per workload (paper: 100)")
		scale   = flag.Float64("scale", 1, "dataset size multiplier")
		seed    = flag.Int64("seed", 42, "workload seed")
		workers = flag.Int("workers", 0, "parallel scoring workers per query (0 = sequential)")
	)
	flag.Parse()

	cfg := bench.DefaultFigureConfig()
	cfg.QueriesPerWorkload = *queries
	cfg.Seed = *seed
	cfg.Workers = *workers

	need := func(names ...string) bool {
		if *fig == "all" {
			return true
		}
		for _, n := range names {
			if *fig == n {
				return true
			}
		}
		return false
	}

	var i1, i2, i3 *bench.Dataset
	if need("4", "5", "7", "8", "ablation") {
		i1 = build("I1 (twitter)", twitterSpec(*scale))
	}
	if need("4", "5b", "8") {
		i2 = build("I2 (vodkaster)", datagen.Vodkaster(scaleVdk(*scale)))
	}
	if need("4", "6", "8") {
		i3 = build("I3 (yelp)", datagen.Yelp(scaleYelp(*scale)))
	}

	out := make([]string, 0, 6)
	emit := func(s string, err error) {
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, s)
	}
	if need("4") {
		out = append(out, bench.Fig4(i1, i2, i3))
	}
	if need("5") {
		emit(bench.Fig5(i1, cfg))
	}
	if need("5b") {
		emit(bench.Fig5(i2, cfg))
	}
	if need("6") {
		emit(bench.Fig5(i3, cfg))
	}
	if need("7") {
		emit(bench.Fig7(i1, cfg))
	}
	if need("8") {
		emit(bench.Fig8(cfg, i1, i2, i3))
	}
	if need("ablation") {
		emit(bench.FigAblations(i1, cfg))
	}
	if len(out) == 0 {
		log.Fatalf("unknown figure %q", *fig)
	}
	fmt.Println(strings.Join(out, "\n"))
}

func build(name string, spec graph.Spec) *bench.Dataset {
	start := time.Now()
	in, err := graph.BuildSpec(spec, text.Analyzer{Lang: text.None})
	if err != nil {
		log.Fatal(err)
	}
	d := bench.NewDataset(name, in)
	log.Printf("built %s in %v (graph) + %v (index)", name, time.Since(start)-d.BuildTime, d.BuildTime)
	return d
}

func twitterSpec(scale float64) graph.Spec {
	o := datagen.DefaultTwitterOptions()
	o.Users = mul(o.Users, scale)
	o.Tweets = mul(o.Tweets, scale)
	spec, _ := datagen.Twitter(o)
	return spec
}

func scaleVdk(scale float64) datagen.VodkasterOptions {
	o := datagen.DefaultVodkasterOptions()
	o.Users = mul(o.Users, scale)
	o.Movies = mul(o.Movies, scale)
	return o
}

func scaleYelp(scale float64) datagen.YelpOptions {
	o := datagen.DefaultYelpOptions()
	o.Users = mul(o.Users, scale)
	o.Businesses = mul(o.Businesses, scale)
	return o
}

func mul(n int, scale float64) int {
	m := int(float64(n) * scale)
	if m < 10 {
		m = 10
	}
	return m
}
