// Command s3gen generates a synthetic S3 instance specification — the
// stand-ins for the paper's I1 (Twitter), I2 (Vodkaster) and I3 (Yelp)
// datasets — optionally writes it to disk, and prints its Figure 4
// statistics. With -snap it also freezes the built instance (graph,
// ontology and connection index) into a binary snapshot that s3serve and
// s3search cold-start from without rebuilding; with -shards N (N > 1) the
// frozen instance is written as a component-sharded shard set instead —
// the manifest at the -snap path plus one "<name>.shard-i" file per shard
// — which s3serve -shardset fans queries out over.
//
// Usage:
//
//	s3gen -dataset twitter -scale 1 -seed 1 -out i1.spec -snap i1.snap
//	s3gen -dataset twitter -shards 4 -snap i1.set
//	s3gen -dataset yelp
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"s3/internal/datagen"
	"s3/internal/graph"
	"s3/internal/index"
	"s3/internal/snap"
	"s3/internal/text"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("s3gen: ")
	var (
		dataset = flag.String("dataset", "twitter", "dataset to generate: twitter | vodkaster | yelp")
		scale   = flag.Float64("scale", 1, "size multiplier over the laptop-scale defaults")
		seed    = flag.Int64("seed", 0, "random seed (0 = dataset default)")
		out     = flag.String("out", "", "write the generated spec (gob) to this file")
		snapOut = flag.String("snap", "", "write a frozen instance snapshot (binary) to this file")
		shards  = flag.Int("shards", 1, "with -snap: partition the instance into this many component shards (manifest + shard files)")
	)
	flag.Parse()

	if *shards < 1 {
		log.Fatal("-shards must be at least 1")
	}
	if *shards > 1 && *snapOut == "" {
		log.Fatal("-shards needs -snap (the shard-set manifest path)")
	}

	spec, extra, err := Generate(*dataset, *scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	in, err := graph.BuildSpec(spec, text.Analyzer{Lang: text.None})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s (scale %.2g)\n\n%s", *dataset, *scale, in.Stats())
	if extra != "" {
		fmt.Println(extra)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := spec.Encode(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nspec written to %s\n", *out)
	}
	switch {
	case *snapOut != "" && *shards > 1:
		if err := writeShardSet(in, *snapOut, *shards); err != nil {
			log.Fatal(err)
		}
	case *snapOut != "":
		f, err := os.Create(*snapOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := snap.Write(f, in, index.Build(in)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("snapshot written to %s\n", *snapOut)
	}
}

// writeShardSet persists the instance as a shard-set manifest plus one
// file per component shard, and prints the layout.
func writeShardSet(in *graph.Instance, manifestPath string, n int) error {
	parts, err := graph.PartitionComponents(in, n)
	if err != nil {
		return err
	}
	paths, err := snap.WriteShardSetFiles(manifestPath, in, index.Build(in), parts)
	if err != nil {
		return err
	}
	fmt.Printf("\nshard set written: manifest %s, %d shards\n", manifestPath, n)
	compShard := make(map[int32]int)
	for s, comps := range parts {
		for _, c := range comps {
			compShard[c] = s
		}
	}
	docs := make([]int, n)
	for _, r := range in.DocRoots() {
		docs[compShard[in.CompOf(r)]]++
	}
	for s, comps := range parts {
		fmt.Printf("  %s: %d components, %d documents\n", paths[s], len(comps), docs[s])
	}
	return nil
}

// Generate builds the requested dataset spec at the given scale.
func Generate(dataset string, scale float64, seed int64) (graph.Spec, string, error) {
	mul := func(n int) int {
		m := int(float64(n) * scale)
		if m < 10 {
			m = 10
		}
		return m
	}
	switch dataset {
	case "twitter":
		o := datagen.DefaultTwitterOptions()
		o.Users, o.Tweets = mul(o.Users), mul(o.Tweets)
		if seed != 0 {
			o.Seed = seed
		}
		spec, rep := datagen.Twitter(o)
		extra := fmt.Sprintf("\nTweets %d\nRetweets %.1f%%\nReplies %.1f%%",
			rep.Tweets, 100*rep.RetweetFrac, 100*rep.ReplyFrac)
		return spec, extra, nil
	case "vodkaster":
		o := datagen.DefaultVodkasterOptions()
		o.Users, o.Movies = mul(o.Users), mul(o.Movies)
		if seed != 0 {
			o.Seed = seed
		}
		return datagen.Vodkaster(o), "", nil
	case "yelp":
		o := datagen.DefaultYelpOptions()
		o.Users, o.Businesses = mul(o.Users), mul(o.Businesses)
		if seed != 0 {
			o.Seed = seed
		}
		return datagen.Yelp(o), "", nil
	default:
		return graph.Spec{}, "", fmt.Errorf("unknown dataset %q (want twitter, vodkaster or yelp)", dataset)
	}
}
