// Command s3gen generates a synthetic S3 instance specification — the
// stand-ins for the paper's I1 (Twitter), I2 (Vodkaster) and I3 (Yelp)
// datasets — optionally writes it to disk, and prints its Figure 4
// statistics. With -snap it also freezes the built instance (graph,
// ontology and connection index) into a binary snapshot that s3serve and
// s3search cold-start from without rebuilding.
//
// Usage:
//
//	s3gen -dataset twitter -scale 1 -seed 1 -out i1.spec -snap i1.snap
//	s3gen -dataset yelp
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"s3/internal/datagen"
	"s3/internal/graph"
	"s3/internal/index"
	"s3/internal/snap"
	"s3/internal/text"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("s3gen: ")
	var (
		dataset = flag.String("dataset", "twitter", "dataset to generate: twitter | vodkaster | yelp")
		scale   = flag.Float64("scale", 1, "size multiplier over the laptop-scale defaults")
		seed    = flag.Int64("seed", 0, "random seed (0 = dataset default)")
		out     = flag.String("out", "", "write the generated spec (gob) to this file")
		snapOut = flag.String("snap", "", "write a frozen instance snapshot (binary) to this file")
	)
	flag.Parse()

	spec, extra, err := Generate(*dataset, *scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	in, err := graph.BuildSpec(spec, text.Analyzer{Lang: text.None})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s (scale %.2g)\n\n%s", *dataset, *scale, in.Stats())
	if extra != "" {
		fmt.Println(extra)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := spec.Encode(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nspec written to %s\n", *out)
	}
	if *snapOut != "" {
		f, err := os.Create(*snapOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := snap.Write(f, in, index.Build(in)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("snapshot written to %s\n", *snapOut)
	}
}

// Generate builds the requested dataset spec at the given scale.
func Generate(dataset string, scale float64, seed int64) (graph.Spec, string, error) {
	mul := func(n int) int {
		m := int(float64(n) * scale)
		if m < 10 {
			m = 10
		}
		return m
	}
	switch dataset {
	case "twitter":
		o := datagen.DefaultTwitterOptions()
		o.Users, o.Tweets = mul(o.Users), mul(o.Tweets)
		if seed != 0 {
			o.Seed = seed
		}
		spec, rep := datagen.Twitter(o)
		extra := fmt.Sprintf("\nTweets %d\nRetweets %.1f%%\nReplies %.1f%%",
			rep.Tweets, 100*rep.RetweetFrac, 100*rep.ReplyFrac)
		return spec, extra, nil
	case "vodkaster":
		o := datagen.DefaultVodkasterOptions()
		o.Users, o.Movies = mul(o.Users), mul(o.Movies)
		if seed != 0 {
			o.Seed = seed
		}
		return datagen.Vodkaster(o), "", nil
	case "yelp":
		o := datagen.DefaultYelpOptions()
		o.Users, o.Businesses = mul(o.Users), mul(o.Businesses)
		if seed != 0 {
			o.Seed = seed
		}
		return datagen.Yelp(o), "", nil
	default:
		return graph.Spec{}, "", fmt.Errorf("unknown dataset %q (want twitter, vodkaster or yelp)", dataset)
	}
}
