package main

import (
	"path/filepath"
	"testing"

	"s3"
	"s3/internal/graph"
	"s3/internal/text"
)

func TestGenerateAllDatasets(t *testing.T) {
	for _, ds := range []string{"twitter", "vodkaster", "yelp"} {
		spec, _, err := Generate(ds, 0.05, 7)
		if err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
		in, err := graph.BuildSpec(spec, text.Analyzer{Lang: text.None})
		if err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
		if in.Stats().Documents == 0 || in.Stats().Users == 0 {
			t.Fatalf("%s: empty instance %+v", ds, in.Stats())
		}
	}
}

func TestGenerateTwitterReport(t *testing.T) {
	_, extra, err := Generate("twitter", 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	if extra == "" {
		t.Fatal("twitter generation must report tweet statistics")
	}
}

func TestGenerateUnknownDataset(t *testing.T) {
	if _, _, err := Generate("friendster", 1, 0); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

// TestWriteShardSetFiles drives the -shards path end to end: generate,
// partition, persist, and reload through the serving loader.
func TestWriteShardSetFiles(t *testing.T) {
	spec, _, err := Generate("twitter", 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	in, err := graph.BuildSpec(spec, text.Analyzer{Lang: text.None})
	if err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(t.TempDir(), "i1.set")
	if err := writeShardSet(in, manifest, 3); err != nil {
		t.Fatal(err)
	}
	si, err := s3.OpenShardSet(manifest, s3.LoadCopy)
	if err != nil {
		t.Fatal(err)
	}
	if si.NumShards() != 3 {
		t.Fatalf("loaded %d shards, want 3", si.NumShards())
	}
	if si.Stats() != in.Stats() {
		t.Errorf("shard set stats %+v, generated instance %+v", si.Stats(), in.Stats())
	}
}
