package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"s3/internal/core"
	"s3/internal/datagen"
	"s3/internal/graph"
	"s3/internal/index"
	"s3/internal/score"
	"s3/internal/snap"
	"s3/internal/text"
)

// smallOptions shrinks the generated dataset so CLI tests stay fast.
func smallOptions() options {
	return options{dataset: "twitter", query: "#h1", k: 3, gamma: 1.5, eta: 0.8, baseline: true}
}

// genSmall builds a reduced twitter instance and saves both a spec and a
// snapshot next to it.
func genSmall(t *testing.T) (specPath, snapPath string, in *graph.Instance, ix *index.Index) {
	t.Helper()
	o := datagen.DefaultTwitterOptions()
	o.Users, o.Tweets, o.Seed = 50, 200, 5
	spec, _ := datagen.Twitter(o)
	var err error
	in, err = graph.BuildSpec(spec, text.Analyzer{Lang: text.None})
	if err != nil {
		t.Fatal(err)
	}
	ix = index.Build(in)

	dir := t.TempDir()
	specPath = filepath.Join(dir, "i1.spec")
	f, err := os.Create(specPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Encode(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	snapPath = filepath.Join(dir, "i1.snap")
	f, err = os.Create(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Write(f, in, ix); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return specPath, snapPath, in, ix
}

func TestRunFromSpecAndSnapshotAgree(t *testing.T) {
	specPath, snapPath, in, ix := genSmall(t)

	// Find a query with results so the transcripts are non-trivial.
	eng := core.NewEngine(in, ix)
	seeker, kw := "", ""
	for _, u := range in.Users() {
		for _, cand := range []string{"#h1", "#h2", "#h3", "#h5"} {
			rs, _, err := eng.Search(u, []string{cand}, core.Options{K: 3, Params: score.Params{Gamma: 1.5, Eta: 0.8}})
			if err == nil && len(rs) > 0 {
				seeker, kw = in.URIOf(u), cand
				break
			}
		}
		if seeker != "" {
			break
		}
	}
	if seeker == "" {
		t.Fatal("no usable query on the generated instance")
	}

	o := smallOptions()
	o.seeker, o.query = seeker, kw

	var fromSpec, fromSnap strings.Builder
	oSpec := o
	oSpec.specPath = specPath
	if err := run(oSpec, &fromSpec); err != nil {
		t.Fatalf("run from spec: %v", err)
	}
	oSnap := o
	oSnap.snapPath = snapPath
	if err := run(oSnap, &fromSnap); err != nil {
		t.Fatalf("run from snapshot: %v", err)
	}

	// Timings differ between runs; compare the transcripts line-wise with
	// the timing fields stripped.
	if got, want := stripTimings(fromSnap.String()), stripTimings(fromSpec.String()); got != want {
		t.Errorf("snapshot-backed run diverged from spec-backed run:\nspec:\n%s\nsnapshot:\n%s", want, got)
	}
	if !strings.Contains(fromSnap.String(), "S3k answer") {
		t.Error("transcript missing the S3k answer section")
	}
	if !strings.Contains(fromSnap.String(), "TopkS baseline") {
		t.Error("transcript missing the baseline section")
	}
}

func TestRunErrors(t *testing.T) {
	o := smallOptions()
	o.dataset = "friendster"
	if err := run(o, &strings.Builder{}); err == nil {
		t.Error("unknown dataset accepted")
	}
	o = smallOptions()
	o.specPath, o.snapPath = "a", "b"
	if err := run(o, &strings.Builder{}); err == nil {
		t.Error("conflicting sources accepted")
	}
	o = smallOptions()
	o.snapPath = filepath.Join(t.TempDir(), "missing.snap")
	if err := run(o, &strings.Builder{}); err == nil {
		t.Error("missing snapshot accepted")
	}
}

// stripTimings removes elapsed-time and iteration-count text, which is
// nondeterministic across runs.
func stripTimings(s string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if i := strings.Index(line, " — "); i >= 0 {
			line = line[:i]
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}
