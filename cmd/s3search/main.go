// Command s3search runs S3k keyword queries against a generated or saved
// instance and prints the ranked fragments, alongside the TopkS baseline
// answer for comparison.
//
// Usage:
//
//	s3search -dataset twitter -query "class-retoka" -k 5
//	s3search -spec i1.spec -seeker tw:u17 -query "#h3" -k 10 -gamma 2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"s3/internal/core"
	"s3/internal/datagen"
	"s3/internal/dict"
	"s3/internal/graph"
	"s3/internal/index"
	"s3/internal/score"
	"s3/internal/text"
	"s3/internal/topks"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("s3search: ")
	var (
		specPath = flag.String("spec", "", "load the instance spec (gob) from this file")
		dataset  = flag.String("dataset", "twitter", "generate this dataset when -spec is not given")
		seeker   = flag.String("seeker", "", "seeker user URI (default: first connected user)")
		query    = flag.String("query", "", "space-separated query keywords (required)")
		k        = flag.Int("k", 5, "number of results")
		gamma    = flag.Float64("gamma", 1.5, "social damping γ > 1")
		eta      = flag.Float64("eta", 0.8, "structural damping η ∈ (0,1)")
		workers  = flag.Int("workers", 0, "parallel scoring workers (0 = sequential)")
		baseline = flag.Bool("baseline", true, "also run the TopkS baseline (α = 0.5)")
	)
	flag.Parse()
	if *query == "" {
		flag.Usage()
		os.Exit(2)
	}

	var spec graph.Spec
	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			log.Fatal(err)
		}
		s, err := graph.DecodeSpec(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		spec = *s
	} else {
		switch *dataset {
		case "twitter":
			spec, _ = datagen.Twitter(datagen.DefaultTwitterOptions())
		case "vodkaster":
			spec = datagen.Vodkaster(datagen.DefaultVodkasterOptions())
		case "yelp":
			spec = datagen.Yelp(datagen.DefaultYelpOptions())
		default:
			log.Fatalf("unknown dataset %q", *dataset)
		}
	}
	in, err := graph.BuildSpec(spec, text.Analyzer{Lang: text.None})
	if err != nil {
		log.Fatal(err)
	}
	ix := index.Build(in)
	eng := core.NewEngine(in, ix)

	var seekerNID graph.NID
	if *seeker == "" {
		for _, u := range in.Users() {
			if len(in.OutEdges(u)) > 0 {
				seekerNID = u
				break
			}
		}
		fmt.Printf("seeker: %s (auto-selected)\n", in.URIOf(seekerNID))
	} else {
		n, ok := in.NIDOf(*seeker)
		if !ok {
			log.Fatalf("unknown seeker %q", *seeker)
		}
		seekerNID = n
	}

	keywords := strings.Fields(*query)
	opts := core.Options{
		K:       *k,
		Params:  score.Params{Gamma: *gamma, Eta: *eta},
		Workers: *workers,
	}
	results, stats, err := eng.Search(seekerNID, keywords, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nS3k answer for %v (γ=%.4g, η=%.4g, k=%d) — %s, %d iterations, %v:\n",
		keywords, *gamma, *eta, *k, stats.Reason, stats.Iterations, stats.Elapsed)
	if len(results) == 0 {
		fmt.Println("  (no results)")
	}
	for i, r := range results {
		fmt.Printf("  %2d. %-24s score ∈ [%.3e, %.3e]\n", i+1, r.URI, r.Lower, r.Upper)
	}

	if *baseline {
		uit := topks.Convert(in)
		teng := topks.NewEngine(uit)
		tkws := resolveKeywords(in, keywords)
		tres, tstats, err := teng.Search(seekerNID, tkws, topks.Options{K: *k, Alpha: 0.5})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nTopkS baseline (α=0.5) — %d users visited, %v:\n", tstats.UsersVisited, tstats.Elapsed)
		if len(tres) == 0 {
			fmt.Println("  (no results)")
		}
		for i, r := range tres {
			fmt.Printf("  %2d. %-24s score ∈ [%.3e, %.3e]\n", i+1, r.URI, r.Lower, r.Upper)
		}
	}
}

// resolveKeywords stems query keywords and resolves them to dictionary
// ids for the UIT baseline (which takes no semantic extension).
func resolveKeywords(in *graph.Instance, kws []string) []dict.ID {
	var out []dict.ID
	an := in.Analyzer()
	for _, kw := range kws {
		stems := an.Keywords(kw)
		if len(stems) == 0 {
			continue
		}
		if id, ok := in.Dict().Lookup(stems[0]); ok {
			out = append(out, id)
		}
	}
	return out
}
