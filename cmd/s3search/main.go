// Command s3search runs S3k keyword queries against a generated or saved
// instance and prints the ranked fragments, alongside the TopkS baseline
// answer for comparison.
//
// Usage:
//
//	s3search -dataset twitter -query "class-retoka" -k 5
//	s3search -spec i1.spec -seeker tw:u17 -query "#h3" -k 10 -gamma 2
//	s3search -snapshot i1.snap -query "#h3"   # cold-start from a snapshot
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"s3/internal/core"
	"s3/internal/datagen"
	"s3/internal/dict"
	"s3/internal/graph"
	"s3/internal/index"
	"s3/internal/score"
	"s3/internal/snap"
	"s3/internal/text"
	"s3/internal/topks"
)

// options carries the parsed command line.
type options struct {
	specPath string
	snapPath string
	dataset  string
	seeker   string
	query    string
	k        int
	gamma    float64
	eta      float64
	workers  int
	baseline bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("s3search: ")
	var o options
	flag.StringVar(&o.specPath, "spec", "", "load the instance spec (gob) from this file")
	flag.StringVar(&o.snapPath, "snapshot", "", "load a frozen instance snapshot (skips rebuild and indexing)")
	flag.StringVar(&o.dataset, "dataset", "twitter", "generate this dataset when -spec/-snapshot are not given")
	flag.StringVar(&o.seeker, "seeker", "", "seeker user URI (default: first connected user)")
	flag.StringVar(&o.query, "query", "", "space-separated query keywords (required)")
	flag.IntVar(&o.k, "k", 5, "number of results")
	flag.Float64Var(&o.gamma, "gamma", 1.5, "social damping γ > 1")
	flag.Float64Var(&o.eta, "eta", 0.8, "structural damping η ∈ (0,1)")
	flag.IntVar(&o.workers, "workers", 0, "parallel scoring workers (0 = sequential)")
	flag.BoolVar(&o.baseline, "baseline", true, "also run the TopkS baseline (α = 0.5)")
	flag.Parse()
	if o.query == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(o, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run loads the instance, executes the query and prints the answer.
func run(o options, w io.Writer) error {
	in, ix, err := load(o)
	if err != nil {
		return err
	}
	eng := core.NewEngine(in, ix)

	seekerNID := graph.NoNID
	if o.seeker == "" {
		for _, u := range in.Users() {
			if len(in.OutEdges(u)) > 0 {
				seekerNID = u
				break
			}
		}
		if seekerNID == graph.NoNID {
			return fmt.Errorf("no connected user to auto-select as seeker; pass -seeker")
		}
		fmt.Fprintf(w, "seeker: %s (auto-selected)\n", in.URIOf(seekerNID))
	} else {
		n, ok := in.NIDOf(o.seeker)
		if !ok {
			return fmt.Errorf("unknown seeker %q", o.seeker)
		}
		seekerNID = n
	}

	keywords := strings.Fields(o.query)
	opts := core.Options{
		K:       o.k,
		Params:  score.Params{Gamma: o.gamma, Eta: o.eta},
		Workers: o.workers,
	}
	results, stats, err := eng.Search(seekerNID, keywords, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nS3k answer for %v (γ=%.4g, η=%.4g, k=%d) — %s, %d iterations, %v:\n",
		keywords, o.gamma, o.eta, o.k, stats.Reason, stats.Iterations, stats.Elapsed)
	if len(results) == 0 {
		fmt.Fprintln(w, "  (no results)")
	}
	for i, r := range results {
		fmt.Fprintf(w, "  %2d. %-24s score ∈ [%.3e, %.3e]\n", i+1, r.URI, r.Lower, r.Upper)
	}

	if o.baseline {
		uit := topks.Convert(in)
		teng := topks.NewEngine(uit)
		tkws := resolveKeywords(in, keywords)
		tres, tstats, err := teng.Search(seekerNID, tkws, topks.Options{K: o.k, Alpha: 0.5})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\nTopkS baseline (α=0.5) — %d users visited, %v:\n", tstats.UsersVisited, tstats.Elapsed)
		if len(tres) == 0 {
			fmt.Fprintln(w, "  (no results)")
		}
		for i, r := range tres {
			fmt.Fprintf(w, "  %2d. %-24s score ∈ [%.3e, %.3e]\n", i+1, r.URI, r.Lower, r.Upper)
		}
	}
	return nil
}

// load resolves the instance source: a binary snapshot (frozen instance +
// index, no rebuild), a spec file, or a generated dataset.
func load(o options) (*graph.Instance, *index.Index, error) {
	if o.snapPath != "" && o.specPath != "" {
		return nil, nil, fmt.Errorf("-snapshot and -spec are mutually exclusive")
	}
	if o.snapPath != "" {
		f, err := os.Open(o.snapPath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		return snap.Read(f)
	}
	var spec graph.Spec
	if o.specPath != "" {
		f, err := os.Open(o.specPath)
		if err != nil {
			return nil, nil, err
		}
		s, err := graph.DecodeSpec(f)
		f.Close()
		if err != nil {
			return nil, nil, err
		}
		spec = *s
	} else {
		switch o.dataset {
		case "twitter":
			spec, _ = datagen.Twitter(datagen.DefaultTwitterOptions())
		case "vodkaster":
			spec = datagen.Vodkaster(datagen.DefaultVodkasterOptions())
		case "yelp":
			spec = datagen.Yelp(datagen.DefaultYelpOptions())
		default:
			return nil, nil, fmt.Errorf("unknown dataset %q", o.dataset)
		}
	}
	in, err := graph.BuildSpec(spec, text.Analyzer{Lang: text.None})
	if err != nil {
		return nil, nil, err
	}
	return in, index.Build(in), nil
}

// resolveKeywords stems query keywords and resolves them to dictionary
// ids for the UIT baseline (which takes no semantic extension).
func resolveKeywords(in *graph.Instance, kws []string) []dict.ID {
	var out []dict.ID
	an := in.Analyzer()
	for _, kw := range kws {
		stems := an.Keywords(kw)
		if len(stems) == 0 {
			continue
		}
		if id, ok := in.Dict().Lookup(stems[0]); ok {
			out = append(out, id)
		}
	}
	return out
}
