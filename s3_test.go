package s3

import (
	"strings"
	"testing"
	"time"
)

// buildFigure1 reproduces the paper's motivating example (Figure 1)
// through the public API, with real English text flowing through the
// Porter pipeline.
func buildFigure1(t *testing.T) *Instance {
	t.Helper()
	b := NewBuilder(English)
	for _, u := range []string{"u0", "u1", "u2", "u3", "u4"} {
		if err := b.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddSocialAs("u1", "u0", 0.9, "friendOf"); err != nil {
		t.Fatal(err)
	}

	// The knowledge base: an M.S. is a degree; degree holders are
	// graduates. (Stemmed forms keep the ontology aligned with content.)
	b.AddTriple(b.Stem("m.s"), "rdfs:subClassOf", b.Stem("degree"))
	b.AddTriple(b.Stem("degree"), "rdfs:subClassOf", b.Stem("qualification"))

	d0 := &DocNode{URI: "d0", Name: "article", Children: []*DocNode{
		{Name: "sec", Text: "introduction"},
		{Name: "sec", Text: "background"},
		{Name: "sec", Children: []*DocNode{
			{Name: "par", Text: "first paragraph"},
			{Name: "par", Text: "a heated debate on education"}, // d0.3.2
		}},
		{Name: "sec", Text: "more content"},
		{Name: "sec", Children: []*DocNode{
			{Name: "par", Text: "a degree does give more opportunities"}, // d0.5.1
		}},
	}}
	if err := b.AddDocument(d0); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPost("d0", "u0"); err != nil {
		t.Fatal(err)
	}
	// d1: u2's reply, containing the M.S. mention.
	if err := b.AddDocumentText("d1", "reply", "When I got my M.S. at UAlberta in 2012"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPost("d1", "u2"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddCommentAs("d1", "d0", "repliesTo"); err != nil {
		t.Fatal(err)
	}
	// d2: u3 comments on the fragment d0.3.2.
	if err := b.AddDocumentText("d2", "comment", "universities matter in this debate"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPost("d2", "u3"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddComment("d2", "d0.3.2"); err != nil {
		t.Fatal(err)
	}
	// u4 tags d0.5.1 with "university".
	if err := b.AddTag("a", "d0.5.1", "u4", "university"); err != nil {
		t.Fatal(err)
	}
	inst, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// The headline scenario of the paper's introduction: u1 searches for
// "graduate degree" content; d1 (which only says "M.S.") must be found
// through the ontology and the reply link.
func TestPaperMotivatingScenario(t *testing.T) {
	inst := buildFigure1(t)
	results, info, err := inst.SearchInfoed("u1", []string{"degree"}, WithK(3))
	if err != nil {
		t.Fatal(err)
	}
	if !info.Exact {
		t.Fatalf("expected an exact answer, got %+v", info)
	}
	if len(results) == 0 {
		t.Fatal("no results")
	}
	found := false
	for _, r := range results {
		if r.Document == "d1" || r.Document == "d0" {
			found = true
		}
		if r.Lower > r.Upper {
			t.Fatalf("inverted interval: %+v", r)
		}
	}
	if !found {
		t.Fatalf("semantic search missed the M.S. reply: %+v", results)
	}
}

func TestSearchFindsTaggedFragment(t *testing.T) {
	inst := buildFigure1(t)
	results, err := inst.Search("u1", []string{"university"}, WithK(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results for university")
	}
	var fragments []string
	for _, r := range results {
		fragments = append(fragments, r.URI)
	}
	joined := strings.Join(fragments, " ")
	if !strings.Contains(joined, "d0") && !strings.Contains(joined, "d2") {
		t.Fatalf("results = %v", fragments)
	}
}

func TestExtension(t *testing.T) {
	inst := buildFigure1(t)
	ext := inst.Extension("degree")
	if len(ext) < 2 {
		t.Fatalf("Extension(degree) = %v, want at least {degre, m.s}", ext)
	}
	hasMS := false
	for _, e := range ext {
		if e == "m.s" {
			hasMS = true
		}
	}
	if !hasMS {
		t.Fatalf("Extension(degree) = %v, missing m.s", ext)
	}
	if got := inst.Extension(""); got != nil {
		t.Fatalf("Extension of empty = %v", got)
	}
}

func TestSearchOptions(t *testing.T) {
	inst := buildFigure1(t)
	// Any-time budget produces a (possibly partial) answer without error.
	_, info, err := inst.SearchInfoed("u1", []string{"university"},
		WithK(2), WithMaxIterations(1), WithGamma(2), WithEta(0.5), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if info.Exact {
		t.Fatal("1-iteration search cannot be exact here")
	}
	_, _, err = inst.SearchInfoed("u1", []string{"university"}, WithBudget(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
}

func TestSearchErrors(t *testing.T) {
	inst := buildFigure1(t)
	if _, err := inst.Search("ghost", []string{"x"}); err == nil {
		t.Fatal("expected error for unknown seeker")
	}
	if _, err := inst.Search("u1", nil); err == nil {
		t.Fatal("expected error for empty query")
	}
	if _, err := inst.Search("u1", []string{"the"}); err == nil {
		// "the" is a stop word: the query has no usable keywords.
		t.Fatal("expected error for stop-word-only query")
	}
}

func TestXMLAndJSONDocuments(t *testing.T) {
	b := NewBuilder(English)
	if err := b.AddUser("u"); err != nil {
		t.Fatal(err)
	}
	err := b.AddDocumentXML("x1", strings.NewReader(
		`<post><title>Graduation day</title><body>the university ceremony</body></post>`))
	if err != nil {
		t.Fatal(err)
	}
	err = b.AddDocumentJSON("j1", strings.NewReader(
		`{"review": "a great university town", "stars": 5}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddPost("x1", "u"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPost("j1", "u"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddUser("seeker"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddSocial("seeker", "u", 1); err != nil {
		t.Fatal(err)
	}
	inst, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	results, err := inst.Search("seeker", []string{"university"}, WithK(5))
	if err != nil {
		t.Fatal(err)
	}
	docs := map[string]bool{}
	for _, r := range results {
		docs[r.Document] = true
	}
	if !docs["x1"] || !docs["j1"] {
		t.Fatalf("expected both XML and JSON documents, got %+v", results)
	}
}

func TestStats(t *testing.T) {
	inst := buildFigure1(t)
	s := inst.Stats()
	if s.Users != 5 || s.Documents != 3 || s.Tags != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("stats must render")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(English)
	if err := b.AddDocument(nil); err == nil {
		t.Fatal("expected error for nil document")
	}
	if err := b.AddDocumentXML("x", strings.NewReader("<a><b></a>")); err == nil {
		t.Fatal("expected error for malformed XML")
	}
	if err := b.AddDocumentJSON("j", strings.NewReader("{")); err == nil {
		t.Fatal("expected error for malformed JSON")
	}
	if err := b.AddSocial("nobody", "noone", 0.5); err == nil {
		t.Fatal("expected error for unknown users")
	}
}

// Concurrent searches over one instance must be safe.
func TestConcurrentSearches(t *testing.T) {
	inst := buildFigure1(t)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 20; i++ {
				if _, err := inst.Search("u1", []string{"university"}, WithK(3)); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
