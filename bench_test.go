// Benchmarks regenerating the paper's evaluation (§5): one benchmark per
// table/figure, plus ablation benches for the design choices DESIGN.md
// calls out. Absolute numbers depend on the host and on the synthetic
// scale; the asserted outcome is the *shape* (see EXPERIMENTS.md).
//
// Run with: go test -bench=. -benchmem
package s3

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"s3/internal/bench"
	"s3/internal/core"
	"s3/internal/datagen"
	"s3/internal/graph"
	"s3/internal/index"
	"s3/internal/score"
	"s3/internal/text"
	"s3/internal/topks"
)

// Benchmark-scale datasets (≈¼ of the cmd/s3bench defaults), built once.
var (
	benchOnce sync.Once
	benchI1   *bench.Dataset
	benchI2   *bench.Dataset
	benchI3   *bench.Dataset
)

func datasets(b *testing.B) (*bench.Dataset, *bench.Dataset, *bench.Dataset) {
	b.Helper()
	benchOnce.Do(func() {
		t := datagen.DefaultTwitterOptions()
		t.Users, t.Tweets = 600, 2400
		spec, _ := datagen.Twitter(t)
		benchI1 = bench.NewDataset("I1", mustBuild(spec))

		v := datagen.DefaultVodkasterOptions()
		v.Users, v.Movies = 300, 220
		benchI2 = bench.NewDataset("I2", mustBuild(datagen.Vodkaster(v)))

		y := datagen.DefaultYelpOptions()
		y.Users, y.Businesses = 500, 300
		benchI3 = bench.NewDataset("I3", mustBuild(datagen.Yelp(y)))
	})
	return benchI1, benchI2, benchI3
}

func mustBuild(spec graph.Spec) *graph.Instance {
	in, err := graph.BuildSpec(spec, text.Analyzer{Lang: text.None})
	if err != nil {
		panic(err)
	}
	return in
}

// BenchmarkFig4_InstanceStats measures the cost of building an instance
// end to end (graph + saturation + matrix + components) — the substrate
// behind Figure 4's statistics.
func BenchmarkFig4_InstanceStats(b *testing.B) {
	o := datagen.DefaultTwitterOptions()
	o.Users, o.Tweets = 300, 1200
	spec, _ := datagen.Twitter(o)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := mustBuild(spec)
		if in.Stats().Users != o.Users {
			b.Fatal("bad build")
		}
	}
}

// timeWorkloads runs Search over pre-built workload queries, one query per
// benchmark op (round-robin).
func timeWorkloads(b *testing.B, d *bench.Dataset, id bench.WorkloadID, gamma float64, workers int) {
	b.Helper()
	w, err := bench.BuildWorkload(d.In, id, 16, 42)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{
		K:       id.K,
		Params:  score.Params{Gamma: gamma, Eta: 0.8},
		Workers: workers,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := w.Queries[i%len(w.Queries)]
		if _, _, err := d.Core.Search(q.Seeker, q.Keywords, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func timeTopkS(b *testing.B, d *bench.Dataset, id bench.WorkloadID, alpha float64) {
	b.Helper()
	w, err := bench.BuildWorkload(d.In, id, 16, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := w.Queries[i%len(w.Queries)]
		kws := d.KeywordIDs(q.Keywords)
		if _, _, err := d.TopkS.Search(q.Seeker, kws, topks.Options{K: id.K, Alpha: alpha}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5_QueryTimesTwitter regenerates Figure 5: S3k query times on
// the Twitter-like instance for each workload and γ, against TopkS for
// each α.
func BenchmarkFig5_QueryTimesTwitter(b *testing.B) {
	i1, _, _ := datasets(b)
	for _, id := range bench.PaperWorkloads() {
		for _, gamma := range []float64{1.25, 1.5, 2} {
			b.Run(fmt.Sprintf("S3k/w=%s/gamma=%.4g", id, gamma), func(b *testing.B) {
				timeWorkloads(b, i1, id, gamma, 0)
			})
		}
		for _, alpha := range []float64{0.25, 0.5, 0.75} {
			b.Run(fmt.Sprintf("TopkS/w=%s/alpha=%.4g", id, alpha), func(b *testing.B) {
				timeTopkS(b, i1, id, alpha)
			})
		}
	}
}

// BenchmarkFig5b_QueryTimesVodkaster regenerates the I2 sweep the paper
// summarises as "results on the smaller instance I2 are similar".
func BenchmarkFig5b_QueryTimesVodkaster(b *testing.B) {
	_, i2, _ := datasets(b)
	for _, id := range bench.PaperWorkloads() {
		b.Run(fmt.Sprintf("S3k/w=%s/gamma=1.5", id), func(b *testing.B) {
			timeWorkloads(b, i2, id, 1.5, 0)
		})
		b.Run(fmt.Sprintf("TopkS/w=%s/alpha=0.5", id), func(b *testing.B) {
			timeTopkS(b, i2, id, 0.5)
		})
	}
}

// BenchmarkFig6_QueryTimesYelp regenerates Figure 6 (the γ/α sweep on I3).
func BenchmarkFig6_QueryTimesYelp(b *testing.B) {
	_, _, i3 := datasets(b)
	for _, id := range bench.PaperWorkloads() {
		for _, gamma := range []float64{1.25, 1.5, 2} {
			b.Run(fmt.Sprintf("S3k/w=%s/gamma=%.4g", id, gamma), func(b *testing.B) {
				timeWorkloads(b, i3, id, gamma, 0)
			})
		}
		for _, alpha := range []float64{0.25, 0.5, 0.75} {
			b.Run(fmt.Sprintf("TopkS/w=%s/alpha=%.4g", id, alpha), func(b *testing.B) {
				timeTopkS(b, i3, id, alpha)
			})
		}
	}
}

// BenchmarkFig7_VaryK regenerates Figure 7: single-keyword workloads with
// k ∈ {1, 5, 10, 50} under γ ∈ {1.5, 4} on I1.
func BenchmarkFig7_VaryK(b *testing.B) {
	i1, _, _ := datasets(b)
	for _, id := range bench.KSweepWorkloads() {
		for _, gamma := range []float64{1.5, 4} {
			b.Run(fmt.Sprintf("w=%s/gamma=%.4g", id, gamma), func(b *testing.B) {
				timeWorkloads(b, i1, id, gamma, 0)
			})
		}
	}
}

// BenchmarkFig8_Quality regenerates Figure 8's comparison measures; the
// measured fractions are reported as custom benchmark metrics
// (graph_reach, sem_reach, l1, intersection — all percentages).
func BenchmarkFig8_Quality(b *testing.B) {
	i1, i2, i3 := datasets(b)
	for _, d := range []*bench.Dataset{i1, i2, i3} {
		b.Run(d.Name, func(b *testing.B) {
			id := bench.WorkloadID{Freq: Common8(), L: 1, K: 5}
			w, err := bench.BuildWorkload(d.In, id, 16, 7)
			if err != nil {
				b.Fatal(err)
			}
			opts := core.Options{Params: score.Params{Gamma: 1.5, Eta: 0.8}}
			var acc bench.Quality
			n := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := w.Queries[i%len(w.Queries)]
				r, err := bench.CompareQuery(d, q, id.K, opts, 0.5)
				if err != nil {
					b.Fatal(err)
				}
				acc.GraphReach += r.GraphReach
				acc.SemReach += r.SemReach
				acc.L1 += r.L1
				acc.Intersection += r.Intersection
				n++
			}
			fn := float64(n)
			b.ReportMetric(100*acc.GraphReach/fn, "graph_reach_%")
			b.ReportMetric(100*acc.SemReach/fn, "sem_reach_%")
			b.ReportMetric(100*acc.L1/fn, "l1_%")
			b.ReportMetric(100*acc.Intersection/fn, "intersection_%")
		})
	}
}

// Common8 returns the Common frequency (helper keeping the benchmark body
// readable).
func Common8() bench.Frequency { return bench.Common }

// --- Ablation benches (design choices called out in DESIGN.md §6) ---

// BenchmarkAblation_ParallelScoring compares sequential candidate scoring
// with the §5.2-style parallel mode.
func BenchmarkAblation_ParallelScoring(b *testing.B) {
	i1, _, _ := datasets(b)
	id := bench.WorkloadID{Freq: bench.Common, L: 1, K: 10}
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			timeWorkloads(b, i1, id, 1.5, workers)
		})
	}
}

// BenchmarkAblation_AnytimeBudget measures the any-time mode of Theorem
// 4.3: capped exploration depth versus running to the provable stop.
func BenchmarkAblation_AnytimeBudget(b *testing.B) {
	i1, _, _ := datasets(b)
	w, err := bench.BuildWorkload(i1.In, bench.WorkloadID{Freq: bench.Common, L: 1, K: 10}, 16, 42)
	if err != nil {
		b.Fatal(err)
	}
	for _, maxIter := range []int{2, 4, 0} {
		name := fmt.Sprintf("maxIter=%d", maxIter)
		if maxIter == 0 {
			name = "maxIter=exact"
		}
		b.Run(name, func(b *testing.B) {
			opts := core.Options{K: 10, Params: score.Params{Gamma: 1.5, Eta: 0.8}, MaxIterations: maxIter}
			for i := 0; i < b.N; i++ {
				q := w.Queries[i%len(w.Queries)]
				if _, _, err := i1.Core.Search(q.Seeker, q.Keywords, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_IndexBuild isolates the connection-index fixpoint —
// the price paid once per instance for the §5.2 pruning.
func BenchmarkAblation_IndexBuild(b *testing.B) {
	o := datagen.DefaultTwitterOptions()
	o.Users, o.Tweets = 300, 1200
	spec, _ := datagen.Twitter(o)
	in := mustBuild(spec)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ix := index.Build(in); ix == nil {
			b.Fatal("nil index")
		}
	}
}

// --- Serving-path benches (the s3serve subsystem) ---

// BenchmarkSpecRebuild measures the legacy cold-start path: decoding a
// spec and re-running the entire build pipeline (validation, ontology
// saturation, matrix normalisation, component partition) plus the
// connection-index fixpoint — everything a process must repeat today
// before it can answer its first query.
func BenchmarkSpecRebuild(b *testing.B) {
	o := datagen.DefaultTwitterOptions()
	o.Users, o.Tweets = 300, 1200
	spec, _ := datagen.Twitter(o)
	var buf bytes.Buffer
	if err := spec.Encode(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst, err := BuildFromSpec(bytes.NewReader(data), Raw)
		if err != nil {
			b.Fatal(err)
		}
		if inst.Stats().Users != 300 {
			b.Fatal("bad rebuild")
		}
	}
}

// BenchmarkSnapshotLoad measures the snapshot cold-start path over the
// same instance: reading the frozen tables back from the binary format.
// Compare with BenchmarkSpecRebuild — the gap is what a serving process
// saves on every restart and every hot reload.
func BenchmarkSnapshotLoad(b *testing.B) {
	o := datagen.DefaultTwitterOptions()
	o.Users, o.Tweets = 300, 1200
	spec, _ := datagen.Twitter(o)
	var specBuf bytes.Buffer
	if err := spec.Encode(&specBuf); err != nil {
		b.Fatal(err)
	}
	inst, err := BuildFromSpec(&specBuf, Raw)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := inst.WriteSnapshot(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		restored, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if restored.Stats().Users != 300 {
			b.Fatal("bad load")
		}
	}
}

// BenchmarkSnapshotWrite measures serialisation cost (the price paid once
// per build or reload cycle).
func BenchmarkSnapshotWrite(b *testing.B) {
	o := datagen.DefaultTwitterOptions()
	o.Users, o.Tweets = 300, 1200
	spec, _ := datagen.Twitter(o)
	var specBuf bytes.Buffer
	if err := spec.Encode(&specBuf); err != nil {
		b.Fatal(err)
	}
	inst, err := BuildFromSpec(&specBuf, Raw)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := inst.WriteSnapshot(&buf); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

// BenchmarkAblation_UITConvert isolates the S3 → UIT conversion used by
// the baseline.
func BenchmarkAblation_UITConvert(b *testing.B) {
	i1, _, _ := datasets(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if u := topks.Convert(i1.In); u == nil {
			b.Fatal("nil conversion")
		}
	}
}

// BenchmarkAblation_ProximityIteration isolates one borderProx matrix
// step — the §5.2 kernel that dominates S3k's exploration cost.
func BenchmarkAblation_ProximityIteration(b *testing.B) {
	i1, _, _ := datasets(b)
	seeker := i1.In.Users()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := score.NewIterator(i1.In, score.Params{Gamma: 1.5, Eta: 0.8}, seeker)
		for n := 0; n < 5; n++ {
			it.Step()
		}
	}
}

// BenchmarkAblation_SemanticExtension compares query answering with the
// ontology in play (class keywords whose Ext fans out to entities) versus
// plain content keywords of similar frequency.
func BenchmarkAblation_SemanticExtension(b *testing.B) {
	i1, _, _ := datasets(b)
	// A class keyword with a non-trivial extension.
	classKw := ""
	for _, kw := range i1.In.SortedKeywordsByFrequency() {
		s := i1.In.Dict().String(kw)
		if len(s) > 6 && s[:6] == "class-" {
			if len(i1.In.Ontology().Ext(kw)) > 1 {
				classKw = s
				break
			}
		}
	}
	if classKw == "" {
		b.Skip("no class keyword present in content")
	}
	seeker := i1.In.Users()[0]
	opts := core.Options{K: 5, Params: score.Params{Gamma: 1.5, Eta: 0.8}}
	b.Run("with-extension", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := i1.Core.Search(seeker, []string{classKw}, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}
